"""Event tracing tests plus failure injection: the system under hostile
conditions (PSM frame loss, dead secondaries, pathological configs)."""

import numpy as np
import pytest

from repro.channel.gilbert import GilbertParams
from repro.core.config import APConfig, ClientConfig, StreamProfile
from repro.core.controller import run_session
from repro.sim import Simulator
from repro.sim.tracing import EventLog, TraceEvent
from repro.wifi.psm import PsmConfig

from tests.test_client_controller import (
    clean_gilbert,
    link_factory,
    outage_gilbert,
)

SHORT = StreamProfile(duration_s=10.0)


# ----------------------------------------------------------------- tracing

def test_event_log_records_and_queries():
    log = EventLog()
    log.record(1.0, "client", "loss-declared", "seq=5")
    log.record(2.0, "client", "recovered", "seq=5")
    assert len(log) == 2
    assert log.of_kind("recovered")[0].time == 2.0
    assert log.between(1.5, 2.5)[0].kind == "recovered"
    assert log.counts() == {"loss-declared": 1, "recovered": 1}


def test_event_log_capacity():
    log = EventLog(capacity=3)
    for i in range(5):
        log.record(float(i), "x", "tick")
    assert len(log) == 3
    assert log.dropped == 2
    assert list(log)[0].time == 2.0


def test_event_log_eviction_scales():
    # Regression: eviction used list.pop(0) (O(n) per append).  With the
    # deque-backed log a large overrun stays fast and every query keeps
    # working on the evicted window.
    log = EventLog(capacity=100)
    for i in range(50_000):
        log.record(float(i), "x", "tick" if i % 2 else "tock", f"n={i}")
    assert len(log) == 100
    assert log.dropped == 49_900
    events = list(log)
    assert events[0].time == 49_900.0
    assert events[-1].time == 49_999.0
    assert log.counts() == {"tick": 50, "tock": 50}
    # Half-open [start, end): the event exactly at the end boundary
    # belongs to the next window, not this one.
    assert [e.time for e in log.between(49_997.0, 49_999.0)] \
        == [49_997.0, 49_998.0]
    assert [e.time for e in log.between(49_999.0, 50_001.0)] \
        == [49_999.0]
    assert all(e.kind == "tick" for e in log.of_kind("tick"))
    assert "n=49999" in log.render_timeline(limit=10)


def test_event_log_between_is_half_open():
    """Regression: ``between`` was inclusive on both ends, so an event
    landing exactly on a window boundary appeared in two adjacent
    windows.  With half-open ``[start, end)`` adjacent slices tile."""
    log = EventLog()
    for t in (0.0, 2.5, 5.0, 7.5, 10.0):
        log.record(t, "x", "tick")
    first = log.between(0.0, 5.0)
    second = log.between(5.0, 10.0)
    assert [e.time for e in first] == [0.0, 2.5]
    assert [e.time for e in second] == [5.0, 7.5]
    # No event is double-counted across the tiling...
    assert len(first) + len(second) + len(log.between(10.0, 15.0)) \
        == len(log)
    # ...and the start boundary is inclusive, the end exclusive.
    assert [e.time for e in log.between(2.5, 2.5)] == []


def test_event_log_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_event_log_timeline_renders():
    log = EventLog()
    for i in range(60):
        log.record(float(i), "src", "tick", f"n={i}")
    text = log.render_timeline(limit=10)
    assert "elided" in text
    assert "n=59" in text


def test_session_emits_events():
    log = EventLog()
    result = run_session(
        link_factory(outage_gilbert(), clean_gilbert()),
        mode="diversifi-ap", profile=SHORT, seed=3, event_log=log)
    counts = log.counts()
    assert counts.get("loss-declared", 0) > 0
    assert counts.get("switch-to-secondary", 0) > 0
    assert counts.get("recovered", 0) > 0
    assert (counts["recovered"]
            == result.client_stats.recovered)


def test_session_clean_channel_quiet_log():
    log = EventLog()
    run_session(link_factory(clean_gilbert(), clean_gilbert()),
                mode="diversifi-ap", profile=SHORT, seed=4,
                event_log=log)
    assert log.counts().get("loss-declared", 0) == 0


# -------------------------------------------------------- failure injection

def run_with_psm_loss(frame_loss_prob, seed=5):
    """A session whose PSM null frames are frequently lost."""
    from repro.core.client import DiversiFiClient
    from repro.core.config import G711_PROFILE
    from repro.sim.random import RandomRouter
    from repro.traffic.voip import VoipSender
    from repro.wifi.ap import AccessPoint
    from repro.wifi.association import WifiManager
    from repro.net.lan import LanSegment

    sim = Simulator()
    router = RandomRouter(seed)
    factory = link_factory(outage_gilbert(), clean_gilbert())
    link_p, link_s = factory(router)
    config = ClientConfig().for_profile(SHORT)
    ap_config = APConfig(max_queue_len=config.ap_queue_len)
    primary = AccessPoint(sim, "primary", link_p, ap_config)
    secondary = AccessPoint(sim, "secondary", link_s, ap_config)
    manager = WifiManager(sim, router.stream("psm"),
                          PsmConfig(frame_loss_prob=frame_loss_prob))
    manager.create_adapter("primary")
    manager.create_adapter("secondary")
    manager.associate("primary", primary, channel=1)
    manager.associate("secondary", secondary, channel=11)
    client = DiversiFiClient(sim, manager, SHORT, config)
    primary.set_receiver(client.on_receive)
    secondary.set_receiver(client.on_receive)
    sender = VoipSender(sim, SHORT)
    lan_p = LanSegment(sim, primary.wired_arrival, router.stream("l1"))
    lan_s = LanSegment(sim, secondary.wired_arrival, router.stream("l2"))
    sender.attach(lan_p.send)
    sender.attach(lan_s.send)
    client.start()
    sender.start()
    sim.run(until=SHORT.duration_s + 1.0)
    return client


def test_heavy_psm_frame_loss_still_functions():
    """With 40% null-frame loss the retry logic (the paper's driver fix)
    keeps the system working, just with slower switches."""
    client = run_with_psm_loss(0.4)
    assert client.stats.recovered > 0
    eff = client.trace.effective_trace(deadline=0.100)
    assert eff.loss_rate < 0.05


def test_psm_loss_degrades_gracefully():
    clean = run_with_psm_loss(0.0, seed=6)
    noisy = run_with_psm_loss(0.6, seed=6)
    clean_loss = clean.trace.effective_trace(0.100).loss_rate
    noisy_loss = noisy.trace.effective_trace(0.100).loss_rate
    # More PSM retries -> slower switches -> at worst a modest penalty.
    assert noisy_loss <= clean_loss + 0.05


def test_dead_secondary_no_worse_than_baseline():
    """DiversiFi with a dead secondary must match primary-only (minus the
    tiny off-channel cost of futile visits)."""
    dead = GilbertParams(mean_good_s=1e-3, mean_bad_s=1e9,
                         loss_good=1.0, loss_bad=1.0)
    baseline = run_session(
        link_factory(outage_gilbert(), dead),
        mode="primary-only", profile=SHORT, seed=7)
    hedged = run_session(
        link_factory(outage_gilbert(), dead),
        mode="diversifi-ap", profile=SHORT, seed=7)
    base_loss = baseline.effective_trace().loss_rate
    hedged_loss = hedged.effective_trace().loss_rate
    assert hedged_loss <= base_loss + 0.03
    assert hedged.client_stats.recovered == 0


def test_both_links_dead_total_loss():
    dead = GilbertParams(mean_good_s=1e-3, mean_bad_s=1e9,
                         loss_good=1.0, loss_bad=1.0)
    result = run_session(link_factory(dead, dead),
                         mode="diversifi-ap", profile=SHORT, seed=8)
    assert result.effective_trace().loss_rate == 1.0


def test_zero_length_ap_queue_disables_recovery():
    result = run_session(
        link_factory(outage_gilbert(), clean_gilbert()),
        mode="diversifi-ap", profile=SHORT, seed=9,
        ap_config=APConfig(drop_policy="head", max_queue_len=1,
                           hardware_queue_batch=1))
    # A 1-deep queue purges the lost packet long before the
    # just-in-time switch arrives.
    assert result.client_stats.recovered <= 2


def test_pathological_switch_latency():
    """A 90 ms switch latency makes just-in-time recovery impossible;
    the client must not crash and losses simply stand."""
    config = ClientConfig(link_switch_latency_s=0.090)
    result = run_session(
        link_factory(outage_gilbert(), clean_gilbert()),
        mode="diversifi-ap", profile=SHORT, seed=10,
        client_config=config)
    assert result.stream.n_packets == SHORT.n_packets  # ran to completion


def test_high_rate_profile_session():
    """The full client/AP stack also runs the 5 Mbps profile (scaled
    client constants via for_profile)."""
    profile = StreamProfile(name="hr", packet_size_bytes=1000,
                            inter_packet_spacing_s=0.0016,
                            duration_s=2.0)
    result = run_session(
        link_factory(outage_gilbert(), clean_gilbert()),
        mode="diversifi-ap", profile=profile, seed=11)
    assert result.stream.n_packets == profile.n_packets
    assert result.effective_trace().loss_rate < 0.2
