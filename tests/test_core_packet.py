"""Tests for packet/trace types and trace merging."""

import math

import numpy as np
import pytest

from repro.core.packet import (
    DeliveryRecord,
    LinkTrace,
    Packet,
    StreamTrace,
    merge_traces,
)


def make_trace(name, delivered, delays=None, spacing=0.02):
    n = len(delivered)
    send_times = np.arange(n) * spacing
    if delays is None:
        delays = [0.005 if d else math.nan for d in delivered]
    return LinkTrace(name, send_times, delivered, delays)


# ------------------------------------------------------------------ Packet

def test_packet_copy_for_link():
    p = Packet(seq=3, send_time=1.0, size_bytes=160, flow_id="rt0")
    c = p.copy_for_link("secondary")
    assert c.seq == 3 and c.link == "secondary" and c.is_duplicate
    assert p.link == ""  # original untouched


def test_delivery_record_delay():
    r = DeliveryRecord(seq=0, send_time=1.0, delivered=True,
                       arrival_time=1.01)
    assert r.delay == pytest.approx(0.01)
    lost = DeliveryRecord(seq=1, send_time=1.0, delivered=False)
    assert math.isnan(lost.delay)


# --------------------------------------------------------------- LinkTrace

def test_trace_loss_rate():
    trace = make_trace("t", [True, False, True, False])
    assert trace.loss_rate == pytest.approx(0.5)


def test_trace_loss_indicator():
    trace = make_trace("t", [True, False])
    assert trace.loss_indicator.tolist() == [0.0, 1.0]


def test_trace_arrivals_nan_for_losses():
    trace = make_trace("t", [True, False])
    arrivals = trace.arrival_times
    assert arrivals[0] == pytest.approx(0.005)
    assert math.isnan(arrivals[1])


def test_trace_column_length_mismatch_raises():
    with pytest.raises(ValueError):
        LinkTrace("bad", [0.0, 0.02], [True], [0.005])


def test_trace_records_iteration():
    trace = make_trace("t", [True, False, True])
    records = list(trace.records())
    assert len(records) == 3
    assert records[0].delivered and not records[1].delivered
    assert records[2].seq == 2


def test_empty_trace_loss_rate_zero():
    trace = LinkTrace("empty", [], [], [])
    assert trace.loss_rate == 0.0


# ------------------------------------------------------------- StreamTrace

def stream(n=5, spacing=0.02):
    return StreamTrace(n_packets=n, send_times=np.arange(n) * spacing)


def test_stream_first_arrival_wins():
    s = stream()
    assert s.record_arrival(0, 0.01, "primary") is True
    assert s.record_arrival(0, 0.02, "secondary") is False
    assert s.duplicates == 1
    assert s.arrivals[0] == 0.01


def test_stream_earlier_duplicate_updates_time():
    s = stream()
    s.record_arrival(0, 0.05)
    s.record_arrival(0, 0.01)
    assert s.arrivals[0] == 0.01


def test_stream_out_of_range_seq_raises():
    s = stream(n=3)
    with pytest.raises(ValueError):
        s.record_arrival(3, 0.1)
    with pytest.raises(ValueError):
        s.record_arrival(-1, 0.1)


def test_stream_per_link_counters():
    s = stream()
    s.record_arrival(0, 0.01, "primary")
    s.record_arrival(1, 0.03, "primary")
    s.record_arrival(1, 0.04, "secondary")
    assert s.received_on == {"primary": 2, "secondary": 1}


def test_stream_loss_rate():
    s = stream(n=4)
    s.record_arrival(0, 0.01)
    s.record_arrival(2, 0.05)
    assert s.loss_rate == pytest.approx(0.5)


def test_effective_trace_applies_deadline():
    s = stream(n=3)
    s.record_arrival(0, 0.01)            # on time
    s.record_arrival(1, 0.02 + 0.200)    # 200 ms late
    eff = s.effective_trace(deadline=0.100)
    assert eff.delivered.tolist() == [True, False, False]


def test_effective_trace_no_deadline_counts_all():
    s = stream(n=2)
    s.record_arrival(0, 5.0)
    eff = s.effective_trace(deadline=None)
    assert eff.delivered.tolist() == [True, False]


# ------------------------------------------------------------ merge_traces

def test_merge_is_union_of_deliveries():
    a = make_trace("a", [True, False, False, True])
    b = make_trace("b", [False, True, False, True])
    merged = merge_traces([a, b])
    assert merged.delivered.tolist() == [True, True, False, True]


def test_merge_takes_earliest_arrival():
    a = make_trace("a", [True], delays=[0.010])
    b = make_trace("b", [True], delays=[0.003])
    merged = merge_traces([a, b])
    assert merged.delays[0] == pytest.approx(0.003)


def test_merge_requires_equal_lengths():
    a = make_trace("a", [True, True])
    b = make_trace("b", [True])
    with pytest.raises(ValueError):
        merge_traces([a, b])


def test_merge_empty_list_raises():
    with pytest.raises(ValueError):
        merge_traces([])


def test_merge_single_trace_identity():
    a = make_trace("a", [True, False, True])
    merged = merge_traces([a])
    assert merged.delivered.tolist() == a.delivered.tolist()


# ------------------------------------------------- lifecycle invariants

def test_copy_for_link_preserves_every_field():
    """Introspective guard: if a field is ever added to Packet,
    copy_for_link must carry it over (this is exactly the failure mode
    reproflow's LIF002 exists to prevent in hand-rolled replicas)."""
    import dataclasses

    p = Packet(seq=7, send_time=1.23, size_bytes=1200, flow_id="rt9",
               link="primary", is_duplicate=False)
    c = p.copy_for_link("secondary", is_duplicate=True)
    overridden = {"link": "secondary", "is_duplicate": True}
    for f in dataclasses.fields(Packet):
        expected = overridden.get(f.name, getattr(p, f.name))
        assert getattr(c, f.name) == expected, (
            f"copy_for_link dropped or corrupted field {f.name!r}")


def test_copy_for_link_returns_distinct_object():
    p = Packet(seq=0, send_time=0.0)
    c = p.copy_for_link("secondary")
    c.seq = 99
    assert p.seq == 0


def test_nan_delay_does_not_poison_window_aggregates():
    """A lost packet's NaN delay must never leak into the windowed loss
    metrics: they are defined over the boolean delivery column."""
    from repro.analysis.windows import window_loss_rates, worst_window_loss

    record = DeliveryRecord(seq=1, send_time=0.02, delivered=False)
    assert math.isnan(record.delay)

    delivered = [True, False, True, False]
    delays = [0.005, record.delay, 0.005, math.nan]
    trace = make_trace("lossy", delivered, delays=delays)

    rates = window_loss_rates(trace, window_s=0.04,
                              inter_packet_spacing_s=0.02)
    assert np.isfinite(rates).all()
    assert rates.tolist() == [0.5, 0.5]
    worst = worst_window_loss(trace, window_s=0.04,
                              inter_packet_spacing_s=0.02)
    assert worst == pytest.approx(0.5)


def test_nan_delay_stream_trace_effective_conversion():
    """StreamTrace -> LinkTrace -> windows: packets that never arrived
    stay NaN in the delay column but count cleanly as losses."""
    from repro.analysis.windows import worst_window_loss

    stream = StreamTrace(n_packets=4, send_times=np.arange(4) * 0.02)
    stream.record_arrival(0, 0.005, link="primary")
    stream.record_arrival(2, 0.047, link="secondary")
    trace = stream.effective_trace()
    assert math.isnan(trace.delays[1]) and math.isnan(trace.delays[3])
    assert worst_window_loss(trace, window_s=0.08,
                             inter_packet_spacing_s=0.02) \
        == pytest.approx(0.5)
