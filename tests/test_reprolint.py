"""Tests for the determinism lint suite (``tools/reprolint``).

Every rule gets at least one triggering fixture and one suppressed
fixture, plus integration tests that run the real CLI over ``src/repro``
(must be clean) and over synthetic violations (must fail).
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from reprolint.baseline import (          # noqa: E402
    filter_new, load_baseline, write_baseline)
from reprolint.engine import lint_paths, lint_source   # noqa: E402
from reprolint.rules import ALL_RULES     # noqa: E402


def lint(source, path="pkg/module.py", rules=None):
    return lint_source(textwrap.dedent(source), path, rules=rules)


def rule_ids(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------------
# Per-rule fixtures: (rule, triggering source, suppressed source).
# The suppressed variant is the same code with an inline disable.
# ------------------------------------------------------------------

FIXTURES = {
    "DET001": (
        """
        import numpy as np
        rng = np.random.default_rng(0)
        """,
        """
        import numpy as np
        rng = np.random.default_rng(0)  # reprolint: disable=DET001
        """,
    ),
    "DET002": (
        """
        import time
        def elapsed():
            return time.time()
        """,
        """
        import time
        def elapsed():
            return time.time()  # reprolint: disable=DET002
        """,
    ),
    "DET003": (
        """
        def arm(sim, links):
            for link in set(links):
                sim.call_in(0.1, link.poll)
        """,
        """
        def arm(sim, links):
            for link in set(links):  # reprolint: disable=DET003
                sim.call_in(0.1, link.poll)
        """,
    ),
    "DET004": (
        """
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        """,
        """
        import multiprocessing
        ctx = multiprocessing.get_context("fork")  # reprolint: disable=DET004
        """,
    ),
    "GEN101": (
        """
        def collect(items=[]):
            return items
        """,
        """
        def collect(items=[]):  # reprolint: disable=GEN101
            return items
        """,
    ),
    "GEN102": (
        """
        def guarded(fn):
            try:
                fn()
            except Exception:
                pass
        """,
        """
        def guarded(fn):
            try:
                fn()
            except Exception:  # reprolint: disable=GEN102
                pass
        """,
    ),
    "GEN103": (
        """
        def due(event, sim):
            return event.time == sim.now
        """,
        """
        def due(event, sim):
            return event.time == sim.now  # reprolint: disable=GEN103
        """,
    ),
    "GEN104": (
        """
        class RetryEvent:
            def __init__(self, when):
                self.when = when
        """,
        """
        class RetryEvent:  # reprolint: disable=GEN104
            def __init__(self, when):
                self.when = when
        """,
    ),
    "GEN105": (
        """
        def build(router):
            a = router.stream("jitter")
            b = router.stream("jitter")
            return a, b
        """,
        """
        def build(router):
            a = router.stream("jitter")
            b = router.stream("jitter")  # reprolint: disable=GEN105
            return a, b
        """,
    ),
    "OBS001": (
        """
        def transmit(frame):
            print("sending", frame)
        """,
        """
        def transmit(frame):
            print("sending", frame)  # reprolint: disable=OBS001
        """,
    ),
}

#: rules that only fire on specific paths lint their fixture there
FIXTURE_PATHS = {"OBS001": "src/repro/wifi/mac.py"}


def fixture_path(rule):
    return FIXTURE_PATHS.get(rule, "pkg/module.py")


@pytest.mark.parametrize("rule", sorted(ALL_RULES))
def test_every_rule_has_fixture(rule):
    assert rule in FIXTURES


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_triggers(rule):
    findings = lint(FIXTURES[rule][0], path=fixture_path(rule))
    assert rule in rule_ids(findings), \
        f"{rule} did not fire on its fixture"


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_suppressed_inline(rule):
    findings = lint(FIXTURES[rule][1], path=fixture_path(rule))
    assert rule not in rule_ids(findings), \
        f"{rule} fired despite inline disable"


def test_disable_all_suppresses_everything():
    findings = lint("""
        import numpy as np
        rng = np.random.default_rng(0)  # reprolint: disable=all
        """)
    assert findings == []


def test_disable_list_is_rule_specific():
    # Disabling an unrelated rule must not silence the real one.
    findings = lint("""
        import numpy as np
        rng = np.random.default_rng(0)  # reprolint: disable=DET002
        """)
    assert rule_ids(findings) == ["DET001"]


# ------------------------------------------------------------ DET001

def test_det001_stdlib_random():
    findings = lint("""
        import random
        x = random.randint(0, 5)
        """)
    assert rule_ids(findings) == ["DET001"]


def test_det001_bare_default_rng_import():
    findings = lint("""
        from numpy.random import default_rng
        g = default_rng(3)
        """)
    assert rule_ids(findings) == ["DET001"]


def test_det001_exempts_stream_factory():
    findings = lint("""
        import numpy as np
        g = np.random.default_rng(np.random.SeedSequence(1))
        """, path="src/repro/sim/random.py")
    assert findings == []


def test_det001_ignores_annotations_and_injected_rng():
    findings = lint("""
        import numpy as np
        def sample(rng: np.random.Generator) -> float:
            return float(rng.random())
        """)
    assert findings == []


# ------------------------------------------------------------ DET002

def test_det002_datetime_now():
    findings = lint("""
        from datetime import datetime
        stamp = datetime.now()
        """)
    assert rule_ids(findings) == ["DET002"]


def test_det002_os_urandom_and_sleep():
    findings = lint("""
        import os
        import time
        token = os.urandom(8)
        time.sleep(0.1)
        """)
    assert rule_ids(findings) == ["DET002", "DET002"]


def test_det002_perf_counter_is_flagged():
    # Monotonic clocks are wall-clock too: the cli.py use needs an
    # explicit suppression, which is the point.
    findings = lint("""
        import time
        t0 = time.perf_counter()
        """)
    assert rule_ids(findings) == ["DET002"]


# ------------------------------------------------------------ DET003

def test_det003_only_fires_in_scheduling_functions():
    findings = lint("""
        def harmless(items):
            return [x for x in set(items)]
        """)
    assert findings == []


def test_det003_comprehension_in_scheduler():
    findings = lint("""
        def arm(sim, links):
            delays = [l.delay for l in set(links)]
            sim.call_in(min(delays), tick)
        """)
    assert rule_ids(findings) == ["DET003"]


# ------------------------------------------------------------ DET004

def test_det004_set_start_method_fork():
    findings = lint("""
        import multiprocessing as mp
        mp.set_start_method("fork")
        """)
    assert rule_ids(findings) == ["DET004"]


def test_det004_pool_without_mp_context():
    findings = lint("""
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(max_workers=4)
        """)
    assert rule_ids(findings) == ["DET004"]


def test_det004_spawn_context_ok():
    findings = lint("""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        ctx = multiprocessing.get_context("spawn")
        pool = ProcessPoolExecutor(max_workers=4, mp_context=ctx)
        """)
    assert findings == []


# ------------------------------------------------------------ GEN10x

def test_gen101_kwonly_defaults():
    findings = lint("""
        def f(*, cache={}):
            return cache
        """)
    assert rule_ids(findings) == ["GEN101"]


def test_gen102_bare_except():
    findings = lint("""
        try:
            risky()
        except:
            pass
        """)
    assert rule_ids(findings) == ["GEN102"]


def test_gen102_specific_except_ok():
    findings = lint("""
        try:
            risky()
        except ValueError:
            pass
        """)
    assert findings == []


def test_gen103_tolerance_compare_ok():
    findings = lint("""
        def due(event, sim):
            return abs(event.time - sim.now) < 1e-9
        """)
    assert findings == []


def test_gen104_slots_and_dataclass_ok():
    findings = lint("""
        from dataclasses import dataclass

        class AckEvent:
            __slots__ = ("when",)
            def __init__(self, when):
                self.when = when

        @dataclass(frozen=True)
        class LogEvent:
            when: float
        """)
    assert findings == []


def test_gen105_distinct_names_ok():
    findings = lint("""
        def build(router):
            return router.stream("a.loss"), router.stream("a.delay")
        """)
    assert findings == []


# ------------------------------------------------------------ OBS001

def test_obs001_only_fires_in_instrumented_packages():
    source = """
        def debug(x):
            print(x)
        """
    assert rule_ids(lint(source, path="src/repro/voice/playout.py")) \
        == ["OBS001"]
    # cli.py and the tools tree print legitimately; tests too.
    assert lint(source, path="src/repro/cli.py") == []
    assert lint(source, path="tools/reprolint/cli.py") == []
    assert lint(source, path="tests/test_thing.py") == []


def test_obs001_stdout_writes_flagged():
    findings = lint("""
        import sys
        def warn():
            sys.stderr.write("retry storm\\n")
        """, path="src/repro/runner/executor.py")
    assert rule_ids(findings) == ["OBS001"]


def test_obs001_global_counter_tally():
    findings = lint("""
        _retry_count = 0
        def note_retry():
            global _retry_count
            _retry_count += 1
        """, path="src/repro/wifi/psm.py")
    assert rule_ids(findings) == ["OBS001"]


def test_obs001_non_counter_global_ok():
    # The active-registry pattern itself uses module state; only
    # tally-shaped names are flagged.
    findings = lint("""
        _active = None
        def install(registry):
            global _active
            _active = registry
        """, path="src/repro/runner/context.py")
    assert findings == []


def test_obs001_metrics_calls_ok():
    findings = lint("""
        def transmit(metrics, frame):
            metrics.counter("mac.attempts").inc()
        """, path="src/repro/wifi/mac.py")
    assert findings == []


# ------------------------------------------------------------ baseline

def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    src = tmp_path / "legacy.py"
    src.write_text(textwrap.dedent("""
        import numpy as np
        rng = np.random.default_rng(0)
        """))
    findings = lint_paths([str(src)])
    assert rule_ids(findings) == ["DET001"]
    baseline = tmp_path / "baseline.json"
    write_baseline(str(baseline), findings)
    assert filter_new(findings, load_baseline(str(baseline))) == []


def test_baseline_survives_line_shifts_but_not_edits(tmp_path):
    src = tmp_path / "legacy.py"
    src.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
    baseline = tmp_path / "baseline.json"
    write_baseline(str(baseline), lint_paths([str(src)]))
    # Pushing the violation down the file keeps it baselined...
    src.write_text("import numpy as np\n\n\n"
                   "rng = np.random.default_rng(0)\n")
    shifted = filter_new(lint_paths([str(src)]),
                         load_baseline(str(baseline)))
    assert shifted == []
    # ...but a second occurrence is new.
    src.write_text("import numpy as np\n"
                   "rng = np.random.default_rng(0)\n"
                   "rng2 = np.random.default_rng(1)\n")
    fresh = filter_new(lint_paths([str(src)]),
                       load_baseline(str(baseline)))
    assert rule_ids(fresh) == ["DET001"]


def test_baseline_file_is_valid_and_empty():
    """The checked-in baseline must stay empty: fix violations, don't
    freeze them (the file exists to demonstrate the workflow and to
    absorb emergencies)."""
    payload = json.loads(
        (REPO / ".reprolint-baseline.json").read_text())
    assert payload["findings"] == []


# ------------------------------------------------------------ CLI

def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "tools"), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-m", "reprolint", *args],
        capture_output=True, text=True, cwd=cwd or str(REPO), env=env)


def test_cli_clean_on_repo_source_tree():
    """`python -m reprolint src/` over the real tree: zero non-baselined
    findings (the acceptance criterion for this whole subsystem)."""
    result = run_cli("src/")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 new finding(s)" in result.stdout


def test_cli_fails_on_synthetic_det001(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nr = np.random.default_rng(1)\n")
    result = run_cli(str(bad), "--no-baseline")
    assert result.returncode == 1
    assert "DET001" in result.stdout


def test_cli_fails_on_synthetic_det002(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    result = run_cli(str(bad), "--no-baseline")
    assert result.returncode == 1
    assert "DET002" in result.stdout


def test_cli_select_restricts_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    result = run_cli(str(bad), "--select", "DET001", "--no-baseline")
    assert result.returncode == 0


def test_cli_write_baseline_then_clean(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nr = np.random.default_rng(1)\n")
    baseline = tmp_path / "bl.json"
    first = run_cli(str(bad), "--baseline", str(baseline),
                    "--write-baseline")
    assert first.returncode == 0
    second = run_cli(str(bad), "--baseline", str(baseline))
    assert second.returncode == 0, second.stdout


def test_cli_list_rules_mentions_every_rule():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in ALL_RULES:
        assert rule in result.stdout


def test_cli_unknown_rule_is_usage_error():
    result = run_cli("src/", "--select", "NOPE999")
    assert result.returncode == 2


def test_cli_missing_path_is_usage_error():
    result = run_cli("no/such/dir")
    assert result.returncode == 2


def test_syntax_error_reported_as_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    result = run_cli(str(bad), "--no-baseline")
    assert result.returncode == 1
    assert "PARSE" in result.stdout
