"""Tests for the deterministic observability layer (``repro.obs``):
registry instruments, merge semantics, span tracking, exporters, and the
process-local collection scope the runner installs."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    COUNT_BUCKETS,
    DURATION_BUCKETS_S,
    EMPTY_METRICS_JSON,
    MetricError,
    MetricsRegistry,
    SpanTracker,
    active_registry,
    collecting,
    from_canonical_json,
    merge_metrics_json,
    record_trace_metrics,
    to_canonical_json,
    to_csv,
    to_prometheus,
)
from repro.core.packet import LinkTrace
from repro.sim.tracing import EventLog


# ---------------------------------------------------------------- counters

def test_counter_inc_and_snapshot():
    registry = MetricsRegistry()
    counter = registry.counter("x.count")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    assert registry.counter("x.count") is counter   # same instrument
    assert counter.snapshot() == {"value": 3.5}


def test_counter_rejects_negative():
    with pytest.raises(MetricError):
        MetricsRegistry().counter("c").inc(-1.0)


def test_counter_integral_value_exports_as_int():
    registry = MetricsRegistry()
    registry.counter("c").inc(2.0)
    snapshot = registry.snapshot()["metrics"][0]
    assert snapshot["value"] == 2
    assert isinstance(snapshot["value"], int)


# ------------------------------------------------------------------ gauges

def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(1.0)
    gauge.set(7.0)
    assert gauge.value == 7.0
    assert gauge.writes == 2


def test_gauge_merge_respects_write_order():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("g").set(1.0)
    b.gauge("g").set(2.0)
    merged = MetricsRegistry().merge(a).merge(b)
    assert merged.gauge("g").value == 2.0
    # An unwritten gauge never clobbers a written one.
    c = MetricsRegistry()
    c.gauge("g")
    merged.merge(c)
    assert merged.gauge("g").value == 2.0


# ------------------------------------------------------- time-weighted

def test_time_gauge_integrates_simulated_time():
    registry = MetricsRegistry()
    awake = registry.time_gauge("awake")
    awake.set(0.0, 1.0)
    awake.set(6.0, 0.0)      # awake for [0, 6)
    awake.close(10.0)        # asleep for [6, 10)
    assert awake.integral == pytest.approx(6.0)
    assert awake.duration == pytest.approx(10.0)
    assert awake.mean == pytest.approx(0.6)


def test_time_gauge_rejects_time_regression():
    gauge = MetricsRegistry().time_gauge("t")
    gauge.set(5.0, 1.0)
    with pytest.raises(MetricError):
        gauge.set(4.0, 0.0)


def test_time_gauge_merge_pools_intervals():
    # Two sessions, each with its own clock starting at 0, fold into one
    # duty-cycle figure — the WifiManager pattern.
    a, b = MetricsRegistry(), MetricsRegistry()
    ga = a.time_gauge("awake")
    ga.set(0.0, 1.0)
    ga.close(4.0)            # 4 s awake of 4 s
    gb = b.time_gauge("awake")
    gb.set(0.0, 0.0)
    gb.close(4.0)            # 4 s asleep of 4 s
    merged = MetricsRegistry().merge(a).merge(b)
    assert merged.time_gauge("awake").mean == pytest.approx(0.5)


# -------------------------------------------------------------- histograms

def test_histogram_buckets_are_half_open():
    registry = MetricsRegistry()
    hist = registry.histogram("h", bounds=(1.0, 2.0))
    for v in (0.5, 1.0, 1.5, 2.0):
        hist.observe(v)
    # [.., 1): {0.5}; [1, 2): {1.0, 1.5}; [2, ..): {2.0} — each boundary
    # value lands in exactly one (the higher) bucket.
    assert hist.counts == [1, 2, 1]
    assert hist.count == 4
    assert hist.minimum == 0.5 and hist.maximum == 2.0


def test_histogram_redeclare_same_bounds_ok_different_raises():
    registry = MetricsRegistry()
    first = registry.histogram("h", bounds=(1.0, 2.0))
    assert registry.histogram("h", bounds=(1.0, 2.0)) is first
    with pytest.raises(MetricError):
        registry.histogram("h", bounds=(1.0, 3.0))


def test_histogram_bounds_must_increase():
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("h", bounds=(2.0, 1.0))
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("h", bounds=())


def test_histogram_merge_adds_counts_and_extrema():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", bounds=(1.0,)).observe(0.5)
    b.histogram("h", bounds=(1.0,)).observe(3.0)
    merged = MetricsRegistry().merge(a).merge(b)
    hist = merged.histogram("h", bounds=(1.0,))
    assert hist.counts == [1, 1]
    assert hist.minimum == 0.5 and hist.maximum == 3.0
    c = MetricsRegistry()
    c.histogram("h", bounds=(2.0,))
    with pytest.raises(MetricError):
        merged.merge(c)


# -------------------------------------------------------------- registry

def test_registry_kind_clash_raises():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(MetricError):
        registry.gauge("m")
    with pytest.raises(MetricError):
        registry.histogram("m")


def test_registry_rejects_empty_name_and_bad_label():
    registry = MetricsRegistry()
    with pytest.raises(MetricError):
        registry.counter("")
    with pytest.raises(MetricError):
        registry.counter("c", bad=1.5)


def test_registry_readout_is_sorted_not_insertion_ordered():
    registry = MetricsRegistry()
    registry.counter("zz")
    registry.counter("aa", link="s")
    registry.counter("aa", link="p")
    keys = [(name, labels) for name, labels, _ in registry.items()]
    assert keys == [("aa", (("link", "p"),)),
                    ("aa", (("link", "s"),)),
                    ("zz", ())]


def test_registry_labels_distinguish_instruments():
    registry = MetricsRegistry()
    registry.counter("c", link="primary").inc()
    registry.counter("c", link="secondary").inc(5)
    assert registry.counter("c", link="primary").value == 1.0
    assert registry.get("c", link="secondary").value == 5.0
    assert registry.get("c", link="nope") is None


def test_registry_bool_is_identity_not_content():
    assert bool(MetricsRegistry()) is True


def test_merge_does_not_alias_source_instruments():
    source = MetricsRegistry()
    source.counter("c").inc(1.0)
    merged = MetricsRegistry().merge(source)
    merged.counter("c").inc(10.0)
    assert source.counter("c").value == 1.0


def test_snapshot_roundtrip_all_kinds():
    registry = MetricsRegistry()
    registry.counter("c", link="p").inc(3)
    registry.gauge("g").set(1.5)
    tg = registry.time_gauge("t")
    tg.set(0.0, 1.0)
    tg.close(2.0)
    registry.histogram("h", bounds=(1.0, 2.0)).observe(1.2)
    rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
    assert to_canonical_json(rebuilt) == to_canonical_json(registry)


# ------------------------------------------------------------------ spans

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_records_events_and_duration_histogram():
    clock = FakeClock()
    registry = MetricsRegistry()
    log = EventLog()
    spans = SpanTracker(clock, registry=registry, event_log=log,
                        source="client")
    span = spans.span("visit", reason="recovery")
    clock.now = 0.25
    assert span.end() == pytest.approx(0.25)
    assert [e.kind for e in log] == ["visit.begin", "visit.end"]
    assert log.of_kind("visit.end")[0].time == 0.25
    hist = registry.get("visit.duration_s", reason="recovery")
    assert hist.count == 1
    assert hist.total == pytest.approx(0.25)


def test_span_end_is_idempotent():
    clock = FakeClock()
    registry = MetricsRegistry()
    spans = SpanTracker(clock, registry=registry)
    span = spans.span("s")
    clock.now = 1.0
    span.end()
    clock.now = 2.0
    assert span.end() == pytest.approx(1.0)   # recorded duration, no re-obs
    assert registry.get("s.duration_s").count == 1


def test_span_context_manager_and_clock_regression():
    clock = FakeClock()
    spans = SpanTracker(clock, registry=MetricsRegistry())
    with spans.span("s") as span:
        clock.now = 0.5
    assert span.closed
    clock.now = 1.0
    late = spans.span("late")
    clock.now = 0.0
    with pytest.raises(ValueError):
        late.end()


def test_span_without_registry_or_log_still_times():
    clock = FakeClock()
    spans = SpanTracker(clock)
    span = spans.span("bare")
    clock.now = 0.125
    assert span.end() == pytest.approx(0.125)


# -------------------------------------------------------------- exporters

def build_sample_registry():
    registry = MetricsRegistry()
    registry.counter("mac.attempts", link="primary").inc(12)
    registry.gauge("sim.final_time_s").set(10.0)
    tg = registry.time_gauge("wifi.awake", adapter="secondary")
    tg.set(0.0, 1.0)
    tg.close(4.0)
    registry.histogram("visit.duration_s", bounds=(0.01, 0.1)).observe(0.02)
    return registry


def test_canonical_json_roundtrip_and_stability():
    registry = build_sample_registry()
    blob = to_canonical_json(registry)
    assert blob == to_canonical_json(from_canonical_json(blob))
    # Canonical: compact separators, sorted keys.
    assert ": " not in blob
    parsed = json.loads(blob)
    names = [entry["name"] for entry in parsed["metrics"]]
    assert names == sorted(names)


def test_empty_metrics_json_constant():
    assert json.loads(EMPTY_METRICS_JSON) == {"metrics": []}
    assert to_canonical_json(MetricsRegistry()) == EMPTY_METRICS_JSON


def test_merge_metrics_json_order_and_identity():
    a = MetricsRegistry()
    a.counter("c").inc(1)
    b = MetricsRegistry()
    b.counter("c").inc(2)
    merged = merge_metrics_json(
        [to_canonical_json(a), EMPTY_METRICS_JSON, to_canonical_json(b)])
    assert merged.counter("c").value == 3.0


def test_csv_export_shape():
    text = to_csv(build_sample_registry())
    lines = text.split("\r\n")
    assert lines[0] == "name,kind,labels,field,value"
    assert any(line.startswith("mac.attempts,counter,link=primary,value,12")
               for line in lines)
    assert text == to_csv(build_sample_registry())   # byte-stable


def test_prometheus_export_format():
    text = to_prometheus(build_sample_registry())
    assert '# TYPE mac_attempts counter' in text
    assert 'mac_attempts{link="primary"} 12' in text
    assert 'wifi_awake_mean{adapter="secondary"} 1' in text
    # Histogram: cumulative buckets plus +Inf, sum and count.
    assert 'visit_duration_s_bucket{le="0.01"} 0' in text
    assert 'visit_duration_s_bucket{le="+Inf"} 1' in text
    assert 'visit_duration_s_count 1' in text
    assert to_prometheus(MetricsRegistry()) == ""


# ------------------------------------------------------------- runtime

def test_collecting_installs_and_restores():
    assert active_registry() is None
    with collecting() as registry:
        assert active_registry() is registry
        inner = MetricsRegistry()
        with collecting(inner) as got:
            assert got is inner
            assert active_registry() is inner
        assert active_registry() is registry
    assert active_registry() is None


def test_collecting_restores_on_exception():
    with pytest.raises(RuntimeError):
        with collecting():
            raise RuntimeError("boom")
    assert active_registry() is None


def test_instrumented_component_defaults_to_active_registry():
    from repro.core.controller import run_session
    from repro.core.config import StreamProfile
    from tests.test_client_controller import (
        clean_gilbert, link_factory, outage_gilbert)
    profile = StreamProfile(duration_s=5.0)
    factory = link_factory(outage_gilbert(), clean_gilbert())
    with collecting() as registry:
        result = run_session(factory, mode="diversifi-ap",
                             profile=profile, seed=21)
    counter = registry.get("client.recovered", mode="diversifi-ap")
    assert counter is not None
    assert counter.value == result.client_stats.recovered
    assert registry.get("session.runs", mode="diversifi-ap").value == 1
    # MAC layers built inside the factory picked up the ambient scope
    # (the test factory names its links "p" and "s").
    assert registry.get("mac.attempts", link="p") is not None
    assert registry.get("wifi.awake", adapter="primary").duration > 0


def test_session_metrics_reproducible():
    from repro.core.controller import run_session
    from repro.core.config import StreamProfile
    from tests.test_client_controller import (
        clean_gilbert, link_factory, outage_gilbert)
    profile = StreamProfile(duration_s=5.0)

    def capture():
        factory = link_factory(outage_gilbert(), clean_gilbert())
        with collecting() as registry:
            run_session(factory, mode="diversifi-ap",
                        profile=profile, seed=22)
        return to_canonical_json(registry)

    assert capture() == capture()


# ------------------------------------------------------ trace metrics

def test_record_trace_metrics_counts_losses_and_bursts():
    losses = np.array([0, 1, 1, 0, 1, 0, 0, 0], dtype=float)
    delivered = [not bool(x) for x in losses]
    delays = [0.005 if d else float("nan") for d in delivered]
    trace = LinkTrace("t", np.arange(losses.size) * 0.02, delivered, delays)
    registry = MetricsRegistry()
    record_trace_metrics(registry, trace, link="primary")
    assert registry.get("trace.packets", link="primary").value == 8
    assert registry.get("trace.lost", link="primary").value == 3
    bursts = registry.get("trace.burst_len", link="primary")
    assert bursts.count == 2             # one 2-burst, one 1-burst
    assert bursts.total == pytest.approx(3.0)


def test_public_api_exports_exist():
    for name in obs.__all__:
        assert hasattr(obs, name), name
    assert obs.__all__ == sorted(obs.__all__)
    assert COUNT_BUCKETS and DURATION_BUCKETS_S
