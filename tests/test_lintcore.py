"""Tests for the shared analysis machinery (``tools/lintcore``).

Both pipeline stages (reprolint, reproflow) sit on these pieces:
findings, tool-scoped suppressions, baselines, path policies and the
output formatters.
"""

import io
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lintcore.baseline import filter_new, load_baseline, write_baseline  # noqa: E402
from lintcore.findings import Finding                                    # noqa: E402
from lintcore.output import emit, render_github                          # noqa: E402
from lintcore.policy import PathPolicy                                   # noqa: E402
from lintcore.suppress import is_suppressed, parse_suppressions          # noqa: E402


def make_finding(path="src/a.py", rule="X001", line=3, col=4,
                 message="bad thing", text="x = 1"):
    return Finding(path=path, rule=rule, line=line, col=col,
                   message=message, text=text)


# -------------------------------------------------------- suppressions

def test_suppressions_are_tool_scoped():
    lines = ["x = 1  # reprolint: disable=A001",
             "y = 2  # reproflow: disable=B001"]
    stage1 = parse_suppressions(lines, tool="reprolint")
    stage2 = parse_suppressions(lines, tool="reproflow")
    assert is_suppressed(stage1, 1, "A001")
    assert not is_suppressed(stage1, 2, "B001")
    assert is_suppressed(stage2, 2, "B001")
    assert not is_suppressed(stage2, 1, "A001")


def test_suppression_disable_all():
    sup = parse_suppressions(["z = 1  # reproflow: disable=all"],
                             tool="reproflow")
    assert is_suppressed(sup, 1, "ANY999")


# ------------------------------------------------------------ baseline

def test_baseline_fingerprint_survives_line_shift(tmp_path):
    baseline_path = tmp_path / "bl.json"
    original = make_finding(line=3)
    write_baseline(str(baseline_path), [original])
    shifted = make_finding(line=30)        # same path/rule/text
    assert filter_new([shifted], load_baseline(str(baseline_path))) == []
    edited = make_finding(text="x = 2")    # text changed: new finding
    assert filter_new([edited],
                      load_baseline(str(baseline_path))) == [edited]


def test_baseline_is_a_multiset(tmp_path):
    baseline_path = tmp_path / "bl.json"
    write_baseline(str(baseline_path), [make_finding(line=3)])
    two = [make_finding(line=3), make_finding(line=7)]
    remaining = filter_new(two, load_baseline(str(baseline_path)))
    assert len(remaining) == 1             # only one occurrence absorbed


# -------------------------------------------------------------- policy

def test_path_policy_prefix_scoping():
    policy = PathPolicy((("tests/", ("A001",)),))
    assert policy.exempt("tests/test_x.py", "A001")
    assert not policy.exempt("tests/test_x.py", "B001")
    assert not policy.exempt("src/a.py", "A001")


def test_path_policy_matches_absolute_paths():
    policy = PathPolicy((("tests/", ("A001",)),))
    assert policy.exempt("/root/repo/tests/test_x.py", "A001")


def test_path_policy_normalizes_prefix_slashes():
    # "tests" and "tests/" are the same entry; backslash paths match.
    for prefix in ("tests", "tests/"):
        policy = PathPolicy(((prefix, ("A001",)),))
        assert policy.exempt("tests/test_x.py", "A001")
        assert policy.exempt("repo\\tests\\test_x.py", "A001")


def test_path_policy_prefix_is_a_component_not_a_substring():
    # "tests/" must match as a directory component: a sibling directory
    # that merely *starts* with the same letters stays covered by rules.
    policy = PathPolicy((("tests/", ("A001",)),))
    assert not policy.exempt("latests/test_x.py", "A001")
    assert not policy.exempt("src/latests/x.py", "A001")
    assert policy.exempt("nested/tests/x.py", "A001")


def test_path_policy_nested_prefix_scoping():
    policy = PathPolicy((("src/repro/runner/", ("A001",)),))
    assert policy.exempt("src/repro/runner/cache.py", "A001")
    assert not policy.exempt("src/repro/studies/provider.py", "A001")


def test_path_policy_union_across_overlapping_entries():
    # Overlapping entries union their rule sets: an empty narrow entry
    # does not mask a broader exemption, it only documents a decision.
    policy = PathPolicy((("src/repro/runner/", ()),
                         ("src/", ("A001",))))
    assert policy.exempt("src/repro/runner/cache.py", "A001")
    assert not policy.exempt("src/repro/runner/cache.py", "B001")


def test_path_policy_file_entry_exact_match():
    policy = PathPolicy((("tests/conftest.py", ("A001",)),))
    assert policy.exempt("tests/conftest.py", "A001")
    assert policy.exempt("/root/repo/tests/conftest.py", "A001")
    # Other files in the same directory are not covered...
    assert not policy.exempt("tests/test_x.py", "A001")
    # ...and neither is a file whose name merely ends the same way.
    assert not policy.exempt("tests/my_conftest.py", "A001")


def test_path_policy_empty_and_describe():
    assert not PathPolicy().exempt("src/a.py", "A001")
    described = PathPolicy((("tests/", ("B001", "A001")),
                            ("tests/conftest.py", ("C001",)))).describe()
    assert "tests/  exempt: A001, B001" in described
    assert "tests/conftest.py  exempt: C001" in described


def test_baseline_fingerprint_stable_under_reindent_only(tmp_path):
    # The fingerprint uses the *stripped* line text, so a pure
    # re-indent (e.g. wrapping the line in an if-block) stays baselined
    # when the analyzer strips text consistently.
    baseline_path = tmp_path / "bl.json"
    write_baseline(str(baseline_path), [make_finding(text="x = 1")])
    moved = make_finding(line=90, text="x = 1")
    assert filter_new([moved], load_baseline(str(baseline_path))) == []


def test_baseline_counts_duplicate_fingerprints(tmp_path):
    # Two identical lines baselined -> two occurrences absorbed, a
    # third is new (the multiset keeps exact counts, not a set).
    baseline_path = tmp_path / "bl.json"
    write_baseline(str(baseline_path),
                   [make_finding(line=3), make_finding(line=9)])
    three = [make_finding(line=3), make_finding(line=9),
             make_finding(line=12)]
    remaining = filter_new(three, load_baseline(str(baseline_path)))
    assert len(remaining) == 1


def test_baseline_distinguishes_rule_and_path(tmp_path):
    baseline_path = tmp_path / "bl.json"
    write_baseline(str(baseline_path), [make_finding()])
    other_rule = make_finding(rule="X002")
    other_path = make_finding(path="src/b.py")
    baselined = load_baseline(str(baseline_path))
    assert filter_new([other_rule], baselined) == [other_rule]
    assert filter_new([other_path], baselined) == [other_path]


def test_baseline_roundtrip_is_deterministic(tmp_path):
    # write_baseline sorts entries, so the same findings in any order
    # produce byte-identical baseline files (diff-stable in review).
    findings = [make_finding(line=9, text="b"),
                make_finding(line=3, text="a"),
                make_finding(path="src/b.py", text="c")]
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    write_baseline(str(path_a), findings)
    write_baseline(str(path_b), list(reversed(findings)))
    assert path_a.read_text() == path_b.read_text()


# -------------------------------------------------------------- output

def test_render_github_workflow_command():
    rendered = render_github(make_finding())
    assert rendered.startswith("::error file=src/a.py,line=3,col=5,")
    assert "title=X001" in rendered


def test_emit_json_payload():
    out = io.StringIO()
    emit([make_finding()], "json", "reproflow", "summary", out)
    payload = json.loads(out.getvalue())
    assert payload["tool"] == "reproflow"
    assert payload["count"] == 1
    assert payload["findings"][0]["path"] == "src/a.py"
    assert payload["findings"][0]["line"] == 3


def test_emit_text_includes_summary():
    out = io.StringIO()
    emit([make_finding()], "text", "reprolint", "the-summary", out)
    assert "src/a.py:3:5: X001 bad thing" in out.getvalue()
    assert "the-summary" in out.getvalue()
