"""Tests for path loss, fading, interference and mobility models."""

import numpy as np
import pytest

from repro.channel.fading import (
    RayleighFading,
    RicianFading,
    SelectionDiversityFading,
)
from repro.channel.interference import (
    CompositeInterference,
    CongestionProcess,
    MicrowaveOven,
    NullInterference,
)
from repro.channel.mobility import (
    Position,
    RandomWaypointMobility,
    StaticPosition,
)
from repro.channel.pathloss import (
    LogDistancePathLoss,
    PathLossParams,
    rssi_to_snr_db,
)
from repro.sim import RandomRouter


def rng(name="x", seed=0):
    return RandomRouter(seed).stream(name)


# ---------------------------------------------------------------- pathloss

def test_rssi_decreases_with_distance():
    model = LogDistancePathLoss(PathLossParams(shadowing_sigma_db=0.0),
                                rng())
    assert model.rssi_dbm(5.0) > model.rssi_dbm(20.0)


def test_pathloss_follows_exponent():
    params = PathLossParams(exponent=3.0, shadowing_sigma_db=0.0)
    model = LogDistancePathLoss(params, rng())
    # 10x the distance -> 30 dB more loss at n=3.
    delta = model.path_loss_db(100.0) - model.path_loss_db(10.0)
    assert delta == pytest.approx(30.0, abs=1e-6)


def test_distance_clamped_to_reference():
    model = LogDistancePathLoss(PathLossParams(shadowing_sigma_db=0.0),
                                rng())
    assert model.rssi_dbm(0.1) == model.rssi_dbm(1.0)


def test_shadowing_redraw_changes_value_but_correlates():
    params = PathLossParams(shadowing_sigma_db=6.0)
    values = []
    model = LogDistancePathLoss(params, rng(seed=7))
    for _ in range(500):
        values.append(model.shadowing_db)
        model.redraw_shadowing(correlation=0.9)
    values = np.array(values)
    # AR(1) with rho=0.9 keeps the marginal variance near sigma^2.
    assert 3.0 < values.std() < 9.0
    x = values - values.mean()
    lag1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
    assert lag1 > 0.7


def test_redraw_correlation_validated():
    model = LogDistancePathLoss(PathLossParams(), rng())
    with pytest.raises(ValueError):
        model.redraw_shadowing(correlation=1.5)


def test_rssi_to_snr():
    assert rssi_to_snr_db(-60.0, noise_floor_dbm=-101.0,
                          noise_figure_db=7.0) == pytest.approx(34.0)


# ----------------------------------------------------------------- fading

def test_rayleigh_mean_power_near_unity():
    fading = RayleighFading(rng(seed=1), coherence_time_s=0.01)
    times = np.arange(0, 200.0, 0.05)  # well beyond coherence: ~iid
    powers = [10 ** (fading.fade_db(t) / 10) for t in times]
    assert np.mean(powers) == pytest.approx(1.0, abs=0.15)


def test_rayleigh_has_deep_fades():
    fading = RayleighFading(rng(seed=2), coherence_time_s=0.01)
    fades = [fading.fade_db(t) for t in np.arange(0, 100.0, 0.05)]
    assert min(fades) < -10.0  # Rayleigh regularly dips 10+ dB


def test_rician_fades_shallower_than_rayleigh():
    ray = RayleighFading(rng("a", seed=3), coherence_time_s=0.01)
    ric = RicianFading(rng("b", seed=3), coherence_time_s=0.01,
                       k_factor_db=10.0)
    times = np.arange(0, 100.0, 0.05)
    ray_p10 = np.percentile([ray.fade_db(t) for t in times], 10)
    ric_p10 = np.percentile([ric.fade_db(t) for t in times], 10)
    assert ric_p10 > ray_p10


def test_fading_temporal_correlation_within_coherence():
    fading = RayleighFading(rng(seed=4), coherence_time_s=1.0)
    # samples 10 ms apart inside a 1 s coherence time barely move
    g0 = fading.gain_at(0.0)
    g1 = fading.gain_at(0.010)
    assert abs(g1 - g0) < 0.5


def test_fading_backwards_query_raises():
    fading = RayleighFading(rng(seed=5))
    fading.fade_db(10.0)
    with pytest.raises(ValueError):
        fading.fade_db(1.0)


def test_selection_diversity_beats_single_branch():
    """Best-of-4 branches must fade far less at the 5th percentile."""
    single = RayleighFading(rng("s", seed=6), coherence_time_s=0.01)
    diverse = SelectionDiversityFading(rng("d", seed=6), n_branches=4,
                                       coherence_time_s=0.01)
    times = np.arange(0, 200.0, 0.05)
    p5_single = np.percentile([single.fade_db(t) for t in times], 5)
    p5_diverse = np.percentile([diverse.fade_db(t) for t in times], 5)
    assert p5_diverse > p5_single + 5.0


def test_selection_diversity_validates_branches():
    with pytest.raises(ValueError):
        SelectionDiversityFading(rng(), n_branches=0)


# ------------------------------------------------------------ interference

def test_null_interference_is_silent():
    quiet = NullInterference()
    assert quiet.snr_penalty_db(1.0) == 0.0
    assert quiet.extra_delay_s(1.0, rng()) == 0.0


def test_microwave_duty_cycle():
    oven = MicrowaveOven(rng(seed=8), episode_rate_hz=1000.0,
                         episode_duration_s=1e9, duty_cycle=0.5,
                         penalty_db=25.0)
    # Force an always-on episode; radiating half the mains cycle.
    times = np.arange(100.0, 140.0, 0.0007)
    radiating = np.array([oven.is_radiating(float(t)) for t in times])
    assert 0.35 < radiating.mean() < 0.65
    # During an episode: full penalty in the radiating phase, floor
    # penalty in the quiet phase.
    penalty = oven.snr_penalty_db(times[-1] + 1.0)
    assert penalty in (oven.floor_penalty_db, 25.0)


def test_microwave_unaffected_band_immune():
    oven = MicrowaveOven(rng(seed=9), affected=False)
    assert not oven.is_radiating(50.0)
    assert oven.snr_penalty_db(50.0) == 0.0


def test_microwave_episodes_are_intermittent():
    oven = MicrowaveOven(rng(seed=10), episode_rate_hz=1.0 / 30.0,
                         episode_duration_s=10.0)
    # Sample at a step that is NOT a multiple of the 20 ms mains period,
    # otherwise every sample lands on the same duty-cycle phase.
    times = np.arange(0, 2000.0, 0.513)
    radiating = np.array([oven.is_radiating(float(t)) for t in times])
    frac = radiating.mean()
    # On ~10/(10+30) of the time, radiating ~50% of that.
    assert 0.02 < frac < 0.35


def test_congestion_busy_fraction():
    congestion = CongestionProcess(rng(seed=11), mean_busy_s=1.0,
                                   mean_idle_s=3.0)
    times = np.arange(0, 4000.0, 0.1)
    busy = np.array([congestion.is_busy(float(t)) for t in times])
    assert busy.mean() == pytest.approx(0.25, abs=0.05)


def test_congestion_adds_delay_when_busy():
    congestion = CongestionProcess(rng(seed=12), mean_busy_s=1e9,
                                   mean_idle_s=1e-9, busy_delay_s=0.015)
    congestion._busy = True
    delay_rng = rng("d", seed=12)
    delays = [congestion.extra_delay_s(1.0, delay_rng)
              for _ in range(200)]
    assert np.mean(delays) == pytest.approx(0.015, rel=0.3)


def test_composite_interference_sums():
    class Fixed:
        def __init__(self, pen, dly):
            self.pen, self.dly = pen, dly

        def snr_penalty_db(self, time):
            return self.pen

        def extra_delay_s(self, time, rng):
            return self.dly

    combo = CompositeInterference(Fixed(10.0, 0.001), Fixed(5.0, 0.002))
    assert combo.snr_penalty_db(0.0) == 15.0
    assert combo.extra_delay_s(0.0, rng()) == pytest.approx(0.003)


# --------------------------------------------------------------- mobility

def test_static_position():
    pos = StaticPosition(Position(3.0, 4.0))
    assert pos.position_at(100.0) == Position(3.0, 4.0)
    assert not pos.is_moving


def test_position_distance():
    assert Position(0.0, 0.0).distance_to(Position(3.0, 4.0)) == 5.0


def test_waypoint_stays_in_floor():
    walk = RandomWaypointMobility(rng(seed=13), floor=(30.0, 15.0))
    for t in np.arange(0, 500.0, 1.0):
        p = walk.position_at(float(t))
        assert 0.0 <= p.x <= 30.0
        assert 0.0 <= p.y <= 15.0


def test_waypoint_actually_moves():
    walk = RandomWaypointMobility(rng(seed=14), speed_range=(1.0, 1.0),
                                  pause_s=0.0)
    p0 = walk.position_at(0.0)
    p1 = walk.position_at(30.0)
    assert p0.distance_to(p1) > 0.5


def test_waypoint_speed_bounded():
    walk = RandomWaypointMobility(rng(seed=15), speed_range=(1.0, 1.0),
                                  pause_s=0.0)
    prev = walk.position_at(0.0)
    for t in np.arange(0.5, 60.0, 0.5):
        cur = walk.position_at(float(t))
        assert prev.distance_to(cur) <= 1.0 * 0.5 + 1e-6
        prev = cur


def test_waypoint_backwards_query_clamped():
    """Two links sharing a walk query at interleaved times; a slightly
    stale query returns the current position instead of raising."""
    walk = RandomWaypointMobility(rng(seed=16))
    now = walk.position_at(10.0)
    stale = walk.position_at(1.0)
    assert stale == now
