"""Statistical-equivalence tests for the vectorized fast renderer."""

import time

import numpy as np
import pytest

from repro.analysis.bursts import burst_stats
from repro.channel.fast import FastLinkRenderer, _ar1_complex
from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import StreamProfile
from repro.sim import RandomRouter

PROFILE = StreamProfile(duration_s=60.0)
POSITION = Position(10.0, 0.0)


def link_config(**kwargs):
    defaults = dict(
        name="fastcheck", ap_position=Position(0.0, 0.0),
        gilbert=GilbertParams(mean_good_s=3.0, mean_bad_s=0.4,
                              loss_good=0.0, loss_bad=0.97),
        base_delay_s=0.004)
    defaults.update(kwargs)
    return LinkConfig(**defaults)


def exact_trace(config, seed):
    link = WifiLink(config, RandomRouter(seed),
                    mobility=StaticPosition(POSITION))
    return link.generate_trace(PROFILE)


def fast_trace(config, seed):
    return FastLinkRenderer(config, POSITION).render(
        PROFILE, RandomRouter(seed))


# ------------------------------------------------------------------- AR(1)

def test_ar1_unit_power():
    rng = np.random.default_rng(0)
    x = _ar1_complex(50_000, rho=0.9, rng=rng)
    assert np.mean(np.abs(x) ** 2) == pytest.approx(1.0, rel=0.1)


def test_ar1_correlation():
    rng = np.random.default_rng(1)
    rho = 0.8
    x = _ar1_complex(100_000, rho=rho, rng=rng)
    measured = np.real(np.mean(x[1:] * np.conj(x[:-1])))
    assert measured == pytest.approx(rho, abs=0.05)


def test_ar1_rho_zero_is_iid():
    rng = np.random.default_rng(2)
    x = _ar1_complex(50_000, rho=0.0, rng=rng)
    measured = np.real(np.mean(x[1:] * np.conj(x[:-1])))
    assert abs(measured) < 0.02


def _ar1_without_scipy(monkeypatch, n, rho, seed):
    """Evaluate _ar1_complex with scipy imports forced to fail."""
    import sys
    monkeypatch.setitem(sys.modules, "scipy", None)
    monkeypatch.setitem(sys.modules, "scipy.signal", None)
    return _ar1_complex(n, rho=rho, rng=np.random.default_rng(seed))


def test_ar1_scipy_free_fallback_matches_lfilter(monkeypatch):
    """The loop fallback must reproduce the lfilter path exactly (same
    stream, same draws) so a scipy-free install renders identical
    channels — the numpy-only guarantee the module docstring promises."""
    pytest.importorskip("scipy.signal")
    for rho, seed in ((0.9, 4), (0.5, 5), (0.999, 6)):
        with_scipy = _ar1_complex(4_000, rho=rho,
                                  rng=np.random.default_rng(seed))
        with monkeypatch.context() as patch:
            fallback = _ar1_without_scipy(patch, 4_000, rho, seed)
        np.testing.assert_allclose(fallback, with_scipy,
                                   rtol=1e-9, atol=1e-12)


def test_ar1_fallback_statistics(monkeypatch):
    """The fallback path holds the AR(1) contract on its own: unit
    power and lag-1 correlation rho."""
    rho = 0.8
    x = _ar1_without_scipy(monkeypatch, 100_000, rho, 7)
    assert np.mean(np.abs(x) ** 2) == pytest.approx(1.0, rel=0.1)
    measured = np.real(np.mean(x[1:] * np.conj(x[:-1])))
    assert measured == pytest.approx(rho, abs=0.05)


# --------------------------------------------------------- equivalence

def mean_over_seeds(fn, config, seeds):
    return np.mean([fn(config, s) for s in seeds])


def test_fast_matches_exact_loss_rate():
    config = link_config()
    seeds = range(6)
    exact = mean_over_seeds(
        lambda c, s: exact_trace(c, s).loss_rate, config, seeds)
    fast = mean_over_seeds(
        lambda c, s: fast_trace(c, s).loss_rate, config, seeds)
    # Same order of magnitude and within 2x of each other.
    assert fast == pytest.approx(exact, rel=1.0, abs=0.01)


def test_fast_matches_burstiness():
    config = link_config()
    exact_stats = burst_stats([exact_trace(config, s) for s in range(5)])
    fast_stats = burst_stats([fast_trace(config, s) for s in range(5)])
    if exact_stats.mean_lost > 1 and fast_stats.mean_lost > 1:
        # Bursty share similar: both dominated by outage spans.
        assert abs(exact_stats.bursty_fraction
                   - fast_stats.bursty_fraction) < 0.35


def test_fast_clean_channel_near_lossless():
    """Right next to the AP (huge SNR margin) a Gilbert-clean channel
    loses essentially nothing even through deep Rayleigh fades."""
    from repro.channel.pathloss import PathLossParams
    config = link_config(
        gilbert=GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                              loss_good=0.0, loss_bad=0.0),
        pathloss=PathLossParams(shadowing_sigma_db=0.0))
    trace = FastLinkRenderer(config, Position(2.0, 0.0)).render(
        PROFILE, RandomRouter(3))
    assert trace.loss_rate < 0.005
    assert np.nanmin(trace.delays) >= config.base_delay_s


def test_fast_deterministic():
    config = link_config()
    a = fast_trace(config, 7)
    b = fast_trace(config, 7)
    assert np.array_equal(a.delivered, b.delivered)
    assert np.allclose(a.delays, b.delays, equal_nan=True)


def test_fast_far_link_lossier():
    near = FastLinkRenderer(link_config(), Position(3.0, 0.0)).render(
        PROFILE, RandomRouter(8))
    from repro.channel.pathloss import PathLossParams
    far_config = link_config(pathloss=PathLossParams(exponent=3.9))
    far = FastLinkRenderer(far_config, Position(55.0, 0.0)).render(
        PROFILE, RandomRouter(8))
    assert far.loss_rate >= near.loss_rate


def test_fast_is_much_faster():
    config = link_config()
    t0 = time.time()
    exact_trace(config, 9)
    exact_time = time.time() - t0
    t0 = time.time()
    fast_trace(config, 9)
    fast_time = time.time() - t0
    assert fast_time < exact_time / 5.0


def test_fast_rician_option():
    config = link_config(rician_k_db=8.0)
    trace = fast_trace(config, 10)
    assert 0.0 <= trace.loss_rate <= 1.0


# ------------------------------------------------------ obs metric parity

def trace_metrics(trace_fn, config, seeds):
    from repro.obs import MetricsRegistry, record_trace_metrics
    registry = MetricsRegistry()
    for seed in seeds:
        record_trace_metrics(registry, trace_fn(config, seed),
                             link="fastcheck")
    return registry


def test_fast_and_exact_emit_identical_instrument_schema():
    """Both render paths must feed the *same* observability surface:
    identical metric names, labels, kinds and histogram bounds, so
    dashboards and digests never care which renderer produced a trace."""
    config = link_config()
    exact = trace_metrics(exact_trace, config, range(2))
    fast = trace_metrics(fast_trace, config, range(2))
    schema = lambda reg: [
        (name, labels, metric.kind, getattr(metric, "bounds", None))
        for name, labels, metric in reg.items()]
    assert schema(exact) == schema(fast)
    assert {name for name, _, _, _ in schema(fast)} \
        == {"trace.packets", "trace.lost", "trace.burst_len",
            "trace.window_loss_rate"}


def test_fast_matches_exact_obs_metrics():
    """Aggregate parity via repro.obs: the fast renderer's recorded
    loss volume and per-window loss distribution agree with the exact
    WifiLink path within the established equivalence tolerances."""
    config = link_config()
    seeds = range(6)
    exact = trace_metrics(exact_trace, config, seeds)
    fast = trace_metrics(fast_trace, config, seeds)
    packets = exact.get("trace.packets", link="fastcheck").value
    assert fast.get("trace.packets", link="fastcheck").value == packets
    exact_rate = exact.get("trace.lost", link="fastcheck").value / packets
    fast_rate = fast.get("trace.lost", link="fastcheck").value / packets
    assert fast_rate == pytest.approx(exact_rate, rel=1.0, abs=0.01)
    # Mean per-window loss rate (histogram sum/count) agrees too — the
    # statistic the paper's worst-window evidence is built from.
    exact_win = exact.get("trace.window_loss_rate", link="fastcheck")
    fast_win = fast.get("trace.window_loss_rate", link="fastcheck")
    assert fast_win.count == exact_win.count
    assert fast_win.total / fast_win.count == pytest.approx(
        exact_win.total / exact_win.count, rel=1.0, abs=0.01)


def test_fast_obs_metrics_deterministic():
    from repro.obs import to_canonical_json
    config = link_config()
    a = trace_metrics(fast_trace, config, [7])
    b = trace_metrics(fast_trace, config, [7])
    assert to_canonical_json(a) == to_canonical_json(b)
