"""Tests for ``tools/bench_compare.py`` (perf trajectory diffing)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from bench_compare import (  # noqa: E402
    PhaseComparison,
    compare,
    main,
    regressions,
    render,
)


def payload(**rates):
    """A minimal BENCH_runner.json shape: name -> (cold, warm) rates."""
    return {"schema": "repro-bench/1",
            "subsystems": {
                name: {"cache_cold": {"sessions_per_s": cold},
                       "cache_warm": {"sessions_per_s": warm}}
                for name, (cold, warm) in rates.items()}}


def test_identical_runs_have_no_regressions():
    base = payload(wifi=(10.0, 100.0), net=(50.0, 500.0))
    rows = compare(base, base)
    assert len(rows) == 4
    assert all(row.status == "ok" for row in rows)
    assert not regressions(rows)


def test_slowdown_beyond_threshold_is_a_regression():
    base = payload(wifi=(10.0, 100.0))
    fresh = payload(wifi=(7.0, 100.0))   # cold lost 30% > 25%
    rows = compare(base, fresh)
    by_phase = {row.phase: row for row in rows}
    assert by_phase["cache_cold"].status == "regression"
    assert by_phase["cache_warm"].status == "ok"
    assert len(regressions(rows)) == 1


def test_threshold_is_configurable():
    base = payload(wifi=(10.0, 100.0))
    fresh = payload(wifi=(8.5, 100.0))   # -15%
    assert not regressions(compare(base, fresh, threshold=0.25))
    assert regressions(compare(base, fresh, threshold=0.10))
    with pytest.raises(ValueError):
        compare(base, fresh, threshold=0.0)
    with pytest.raises(ValueError):
        compare(base, fresh, threshold=1.5)


def test_speedup_reported_as_improved_not_regression():
    rows = compare(payload(wifi=(10.0, 100.0)),
                   payload(wifi=(20.0, 100.0)))
    assert {row.status for row in rows} == {"improved", "ok"}
    assert not regressions(rows)


def test_subsystem_missing_from_fresh_run_regresses():
    rows = compare(payload(wifi=(10.0, 100.0), net=(50.0, 500.0)),
                   payload(wifi=(10.0, 100.0)))
    missing = [row for row in rows if row.status == "missing"]
    assert [row.subsystem for row in missing] == ["net", "net"]
    assert len(regressions(rows)) == 2


def test_extra_fresh_subsystem_ignored():
    rows = compare(payload(wifi=(10.0, 100.0)),
                   payload(wifi=(10.0, 100.0), new=(1.0, 1.0)))
    assert {row.subsystem for row in rows} == {"wifi"}


def test_null_baseline_rate_skipped():
    base = payload(wifi=(None, 100.0))
    rows = compare(base, base)
    assert [row.phase for row in rows] == ["cache_warm"]


def test_render_mentions_every_row_and_count():
    rows = compare(payload(wifi=(10.0, 100.0)),
                   payload(wifi=(7.0, 100.0)))
    text = render(rows, 0.25)
    assert "wifi" in text and "[regression]" in text and "[ok]" in text
    assert "1 regression(s) across 2 measurement(s)" in text


def test_main_exit_codes(tmp_path, capsys):
    base_file = tmp_path / "base.json"
    base_file.write_text(json.dumps(payload(wifi=(10.0, 100.0))))
    ok_file = tmp_path / "ok.json"
    ok_file.write_text(json.dumps(payload(wifi=(11.0, 105.0))))
    bad_file = tmp_path / "bad.json"
    bad_file.write_text(json.dumps(payload(wifi=(1.0, 100.0))))
    assert main(["--baseline", str(base_file),
                 "--fresh", str(ok_file)]) == 0
    assert main(["--baseline", str(base_file),
                 "--fresh", str(bad_file)]) == 1
    assert main(["--baseline", str(tmp_path / "absent.json"),
                 "--fresh", str(ok_file)]) == 2
    capsys.readouterr()


def test_cli_subprocess_compares_two_files(tmp_path):
    base_file = tmp_path / "base.json"
    base_file.write_text(json.dumps(payload(wifi=(10.0, 100.0))))
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "bench_compare.py"),
         "--baseline", str(base_file), "--fresh", str(base_file)],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    assert "0 regression(s)" in result.stdout


def test_committed_baseline_parses_with_expected_schema():
    """The checked-in BENCH_runner.json stays consumable by the tool."""
    baseline = json.loads((REPO / "BENCH_runner.json").read_text())
    assert baseline["schema"] == "repro-bench/1"
    rows = compare(baseline, baseline)
    assert rows and all(row.status == "ok" for row in rows)
    assert isinstance(rows[0], PhaseComparison)
