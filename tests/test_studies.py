"""Tests for the Section 3 measurement-study simulations."""

import numpy as np
import pytest

from repro.channel.gilbert import GilbertParams, sample_loss_array
from repro.sim import RandomRouter
from repro.studies.nettest import (
    CATEGORY_COUNTS,
    run_nettest_study,
)
from repro.studies.provider import (
    ProviderDataset,
    RatedCall,
    analyze_table1,
    synthesize_provider_year,
)
from repro.studies.scan import (
    SURVEY_LOCATIONS,
    VENUE_CLASSES,
    residential_multi_bssid_fraction,
    run_site_survey,
)


# ------------------------------------------------------- fast Gilbert path

def test_sample_loss_array_statistics():
    params = GilbertParams(mean_good_s=1.0, mean_bad_s=0.25,
                           loss_good=0.0, loss_bad=1.0)
    rng = RandomRouter(0).stream("fast")
    losses = sample_loss_array(params, 100_000, 0.02, rng)
    assert losses.mean() == pytest.approx(
        params.stationary_bad_fraction, abs=0.04)


def test_sample_loss_array_bursty():
    params = GilbertParams(mean_good_s=2.0, mean_bad_s=0.3,
                           loss_good=0.0, loss_bad=1.0)
    rng = RandomRouter(1).stream("fast")
    x = sample_loss_array(params, 50_000, 0.02, rng)
    x = x - x.mean()
    lag1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
    assert lag1 > 0.5


def test_sample_loss_array_length():
    params = GilbertParams()
    rng = RandomRouter(2).stream("fast")
    assert len(sample_loss_array(params, 123, 0.02, rng)) == 123


# ----------------------------------------------------------- provider study

@pytest.fixture(scope="module")
def provider_dataset():
    return synthesize_provider_year(n_calls=60_000, seed=0)


def test_provider_pcr_in_plausible_range(provider_dataset):
    pcr = provider_dataset.pcr()
    assert 0.05 < pcr < 0.35


def test_provider_has_all_categories(provider_dataset):
    categories = {c.category for c in provider_dataset.calls}
    assert categories == {"EE", "EW", "WW"}


def test_table1_row_structure(provider_dataset):
    rows = analyze_table1(provider_dataset)
    assert len(rows) == 4
    assert rows[0].label == "All"
    assert rows[0].n_calls == len(provider_dataset.calls)
    assert rows[1].n_calls <= rows[0].n_calls  # subsets shrink


def test_table1_wifi_gap_direction(provider_dataset):
    """The paper's core finding: in the full population EE beats the
    baseline, WW trails it, EW sits between — and EE stays the best
    category in every subset row (the WW subsets are small by
    construction, so only the EE dominance is statistically stable)."""
    rows = analyze_table1(provider_dataset)
    row1 = rows[0]
    assert row1.delta_ee_pct > row1.delta_ew_pct > row1.delta_ww_pct
    assert row1.delta_ee_pct - row1.delta_ww_pct > 15.0
    for row in rows:
        assert row.delta_ee_pct >= row.delta_ew_pct
        assert row.delta_ee_pct >= row.delta_ww_pct


def test_table1_row1_matches_paper_signs(provider_dataset):
    row1 = analyze_table1(provider_dataset)[0]
    assert row1.delta_ee_pct > 0      # paper: +27.7%
    assert row1.delta_ww_pct < 0      # paper: -18.4%


def test_provider_deterministic():
    a = synthesize_provider_year(n_calls=5000, seed=42)
    b = synthesize_provider_year(n_calls=5000, seed=42)
    assert [c.rating for c in a.calls] == [c.rating for c in b.calls]


def test_provider_pcr_empty_subset_nan():
    ds = ProviderDataset()
    assert np.isnan(ds.pcr())


def test_provider_pcr_none_vs_empty_subset():
    """``calls=None`` means "the whole dataset", never "no calls": a
    dataset with rated calls must score them, while an explicitly empty
    subset (e.g. a filter that matched nothing) is NaN."""
    ds = ProviderDataset(calls=[RatedCall(0, "EE", True, 1),
                                RatedCall(0, "EE", True, 5)])
    assert ds.pcr() == pytest.approx(0.5)
    assert ds.pcr(None) == pytest.approx(0.5)
    assert np.isnan(ds.pcr([]))
    assert ds.pcr(ds.calls[:1]) == pytest.approx(1.0)
    assert ds.pcr([c for c in ds.calls if not c.poor]) == pytest.approx(0.0)


def test_provider_pcr_accepts_generator():
    """Regression: pcr() is single-pass, so a one-shot generator must
    give the same answer as the equivalent list (the old two-pass
    implementation silently consumed generators and returned NaN)."""
    ds = ProviderDataset(calls=[RatedCall(0, "EE", True, 1),
                                RatedCall(0, "WW", False, 2),
                                RatedCall(1, "EE", True, 4),
                                RatedCall(1, "EW", True, 5)])
    from_list = ds.pcr([c for c in ds.calls if c.category == "EE"])
    from_gen = ds.pcr(c for c in ds.calls if c.category == "EE")
    assert from_gen == from_list == pytest.approx(0.5)
    assert np.isnan(ds.pcr(c for c in ds.calls if c.category == "XX"))


def test_rated_call_poor_definition():
    assert RatedCall(0, "EE", True, 1).poor
    assert RatedCall(0, "EE", True, 2).poor
    assert not RatedCall(0, "EE", True, 3).poor


# ------------------------------------------------------------ NetTest study

@pytest.fixture(scope="module")
def nettest_dataset():
    return run_nettest_study(seed=0, scale=0.1)


def test_nettest_category_sizes(nettest_dataset):
    rows = dict((r[0], r[1]) for r in nettest_dataset.table2())
    for category, count in CATEGORY_COUNTS.items():
        assert rows[category] == pytest.approx(count * 0.1, abs=1)


def test_nettest_ww_worse_than_ew(nettest_dataset):
    assert (nettest_dataset.pcr("WW") > nettest_dataset.pcr("EW"))


def test_nettest_relayed_much_worse(nettest_dataset):
    """The overloaded-relay artifact: relayed PCR dwarfs direct PCR.

    At scale 0.1 the WW-Relayed bucket holds only ~23 calls, so the
    ratio is compared at 2x (not the ~5x the full study shows) to stay
    robust to realization noise across stream-layout changes.
    """
    assert nettest_dataset.pcr("EW-Relayed") > 3 * nettest_dataset.pcr("EW")
    assert nettest_dataset.pcr("WW-Relayed") > 2 * nettest_dataset.pcr("WW")


def test_nettest_overall_pcr_plausible(nettest_dataset):
    # Paper: 10.23% overall.
    assert 0.05 < nettest_dataset.pcr() < 0.20


def test_nettest_spatial_stats(nettest_dataset):
    frac_any, frac_20 = nettest_dataset.spatial_stats()
    assert 0.0 < frac_any <= 1.0
    assert frac_20 <= frac_any


def test_nettest_deterministic():
    a = run_nettest_study(seed=7, scale=0.02)
    b = run_nettest_study(seed=7, scale=0.02)
    assert [c.mos for c in a.calls] == [c.mos for c in b.calls]


# --------------------------------------------------------------- site survey

def test_survey_covers_all_locations():
    results = run_site_survey(seed=0)
    assert len(results) == len(SURVEY_LOCATIONS)


def test_survey_every_location_multi_bssid():
    """Paper: at least 2 connectable BSSIDs everywhere surveyed."""
    for _, scan in run_site_survey(seed=0):
        assert scan.n_bssids >= 2


def test_survey_median_bssids_near_paper():
    medians = []
    for seed in range(5):
        counts = [s.n_bssids for _, s in run_site_survey(seed=seed)]
        medians.append(np.median(counts))
    assert 4 <= np.mean(medians) <= 8    # paper: median 6


def test_survey_channels_not_more_than_bssids():
    for _, scan in run_site_survey(seed=1):
        assert scan.n_channels <= scan.n_bssids


def test_virtual_aps_share_channels():
    """The in-flight venue is mostly virtual APs: more BSSIDs than
    channels."""
    results = dict((loc.venue_class, scan)
                   for loc, scan in run_site_survey(seed=3))
    inflight = results["inflight"]
    assert inflight.n_bssids > inflight.n_channels


def test_residential_fraction_near_30pct():
    frac = residential_multi_bssid_fraction(seed=0, n_homes=400)
    assert 0.15 < frac < 0.45


def test_all_venue_classes_valid():
    for venue in VENUE_CLASSES.values():
        assert venue.min_aps <= venue.max_aps
        assert 0.0 <= venue.dual_band_prob <= 1.0
        assert 0.0 <= venue.virtual_ap_prob <= 1.0
