"""Integration tests: the DiversiFi client + controller end to end.

These use short calls (10 s) over controlled channels so assertions are
about *mechanisms* (recovery, keepalive, waste accounting), not statistics.
"""

import numpy as np
import pytest

from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import APConfig, ClientConfig, StreamProfile
from repro.core.controller import run_session
from repro.sim.random import RandomRouter

SHORT = StreamProfile(duration_s=10.0)   # 500 packets


def clean_gilbert():
    return GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                         loss_good=0.0, loss_bad=0.0)


def outage_gilbert(mean_good=3.0, mean_bad=0.3):
    return GilbertParams(mean_good_s=mean_good, mean_bad_s=mean_bad,
                         loss_good=0.0, loss_bad=0.999)


def link_factory(gilbert_primary, gilbert_secondary,
                 distance_primary=5.0, distance_secondary=12.0):
    def build(router):
        client = StaticPosition(Position(0.0, 0.0))
        primary = WifiLink(
            LinkConfig(name="p", ap_position=Position(distance_primary, 0),
                       gilbert=gilbert_primary, base_delay_s=0.0),
            router, mobility=client)
        secondary = WifiLink(
            LinkConfig(name="s", ap_position=Position(distance_secondary, 0),
                       gilbert=gilbert_secondary, base_delay_s=0.0),
            router, mobility=client)
        return primary, secondary
    return build


def run(mode="diversifi-ap", primary=None, secondary=None, seed=0, **kwargs):
    factory = link_factory(primary or clean_gilbert(),
                           secondary or clean_gilbert())
    return run_session(factory, mode=mode, profile=SHORT, seed=seed,
                       **kwargs)


# ------------------------------------------------------------ basic modes

def test_clean_channel_delivers_everything():
    result = run()
    assert result.stream.loss_rate == 0.0
    eff = result.effective_trace()
    assert eff.loss_rate == 0.0


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        run(mode="nonsense")


def test_primary_only_never_switches():
    result = run(mode="primary-only", primary=outage_gilbert())
    assert result.switch_count == 0
    assert result.client_stats.recovered == 0


def test_secondary_only_swaps_links():
    # Secondary link in permanent outage; primary clean.  In
    # secondary-only mode the client is pinned to the (bad) secondary.
    dead = GilbertParams(mean_good_s=1e-3, mean_bad_s=1e9,
                         loss_good=1.0, loss_bad=1.0)
    result = run(mode="secondary-only", primary=clean_gilbert(),
                 secondary=dead)
    assert result.effective_trace().loss_rate == 1.0


# --------------------------------------------------------------- recovery

def test_diversifi_recovers_primary_outage_losses():
    result = run(mode="diversifi-ap", primary=outage_gilbert(),
                 secondary=clean_gilbert(), seed=3)
    primary_losses = result.client_stats.losses_declared
    assert primary_losses > 0
    assert result.client_stats.recovered > 0
    # Residual loss far below the primary's raw loss.
    eff = result.effective_trace()
    assert eff.loss_rate < 0.25 * (primary_losses / SHORT.n_packets)


def test_diversifi_beats_primary_only_on_same_channel():
    primary_g = outage_gilbert(mean_good=2.0, mean_bad=0.4)
    base = run(mode="primary-only", primary=primary_g, seed=5)
    div = run(mode="diversifi-ap", primary=primary_g, seed=5)
    assert (div.effective_trace().loss_rate
            < base.effective_trace().loss_rate)


def test_recovered_packets_meet_deadline():
    result = run(mode="diversifi-ap", primary=outage_gilbert(), seed=7)
    eff = result.effective_trace(deadline=0.100)
    delays = eff.delays[eff.delivered]
    assert np.nanmax(delays) <= 0.100 + 1e-9


def test_recovery_switches_counted():
    result = run(mode="diversifi-ap", primary=outage_gilbert(), seed=9)
    assert result.client_stats.recovery_switches > 0
    assert result.switch_count >= result.client_stats.recovery_switches


# ---------------------------------------------------------------- keepalive

def test_keepalive_fires_on_long_clean_call():
    profile = StreamProfile(duration_s=70.0)
    factory = link_factory(clean_gilbert(), clean_gilbert())
    result = run_session(factory, mode="diversifi-ap", profile=profile,
                         seed=11)
    # 70 s call, AKT=30 s -> at least two keepalive visits.
    assert result.client_stats.keepalive_switches >= 2


def test_disabled_client_never_visits_secondary():
    result = run(mode="primary-only", primary=outage_gilbert(), seed=13)
    assert result.client_stats.keepalive_switches == 0
    assert result.off_channel_time_s == 0.0


# ------------------------------------------------------------- duplication

def test_waste_accounting_small_on_clean_channel():
    result = run(seed=15)
    # Only keepalive visits can waste packets on a clean channel.
    assert result.wasteful_duplicates <= 10
    assert result.wasteful_duplication_rate() < 0.03


def test_naive_duplication_would_be_100x_worse():
    """The whole point: DiversiFi's duplication is a tiny fraction of the
    stream, versus 100% for naive replication."""
    result = run(mode="diversifi-ap", primary=outage_gilbert(), seed=17)
    assert result.secondary_air_transmissions < 0.2 * SHORT.n_packets


# -------------------------------------------------------------- middlebox

def test_middlebox_mode_recovers_losses():
    result = run(mode="diversifi-mbox", primary=outage_gilbert(),
                 secondary=clean_gilbert(), seed=19)
    assert result.middlebox is not None
    assert result.middlebox.stats.start_messages > 0
    assert result.client_stats.recovered > 0
    eff = result.effective_trace()
    assert eff.loss_rate < 0.02


def test_middlebox_mode_clean_channel_quiet():
    result = run(mode="diversifi-mbox", seed=21)
    assert result.effective_trace().loss_rate == 0.0
    # start/stop only from keepalives
    assert result.middlebox.stats.start_messages <= 3


def test_middlebox_extra_streams_increase_delay():
    lightly = run(mode="diversifi-mbox", primary=outage_gilbert(), seed=23)
    heavily = run(mode="diversifi-mbox", primary=outage_gilbert(), seed=23,
                  extra_middlebox_streams=1000)
    assert (heavily.middlebox.service_delay_s()
            > lightly.middlebox.service_delay_s())


# ------------------------------------------------------------ determinism

def test_sessions_reproducible_by_seed():
    a = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    b = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    assert a.stream.arrivals == b.stream.arrivals
    assert a.wasteful_duplicates == b.wasteful_duplicates


def test_digest_absent_without_sanitizer(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    result = run(mode="diversifi-ap", seed=31)
    assert result.determinism_digest is None


def test_sanitized_sessions_same_seed_same_digest(monkeypatch):
    """The sanitizer acceptance criterion: a full DiversiFi session's
    event sequence is bit-for-bit reproducible from (scenario, seed)."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    a = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    b = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    assert a.determinism_digest is not None
    assert a.determinism_digest == b.determinism_digest


def test_sanitized_sessions_cross_seed_differ(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    a = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    b = run(mode="diversifi-ap", primary=outage_gilbert(), seed=32)
    assert a.determinism_digest != b.determinism_digest


def test_sanitized_session_matches_unsanitized_behaviour(monkeypatch):
    """The sanitizer must observe, never perturb."""
    plain = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run(mode="diversifi-ap", primary=outage_gilbert(), seed=31)
    assert plain.stream.arrivals == sanitized.stream.arrivals
    assert plain.switch_count == sanitized.switch_count
