"""Second round of property-based tests: multilink, FEC, fitting, DCF,
adaptive playout, tracing."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fitting import fit_gilbert
from repro.core.config import StreamProfile
from repro.core.fec import FecConfig, apply_fec
from repro.core.multilink import MultiLinkRun, best_of
from repro.core.packet import LinkTrace
from repro.sim import Simulator
from repro.sim.tracing import EventLog
from repro.voice.adaptive import AdaptivePlayoutBuffer


loss_patterns = st.lists(st.booleans(), min_size=1, max_size=200)


def trace_of(losses, name="t", spacing=0.02):
    delivered = [not x for x in losses]
    delays = [0.005 if d else math.nan for d in delivered]
    return LinkTrace(name, np.arange(len(losses)) * spacing,
                     delivered, delays)


# --------------------------------------------------------------- multilink

@given(st.lists(loss_patterns, min_size=2, max_size=4))
def test_best_of_all_links_is_union(patterns):
    n = min(len(p) for p in patterns)
    traces = [trace_of(p[:n], name=f"l{i}")
              for i, p in enumerate(patterns)]
    run = MultiLinkRun(profile=StreamProfile(duration_s=n * 0.02),
                       traces=traces,
                       rssi_dbm=[-50.0 - i for i in range(len(traces))])
    merged = best_of(run, len(traces))
    for i in range(n):
        expected = any(not p[i] for p in patterns)
        assert bool(merged.delivered[i]) == expected


@given(st.lists(loss_patterns, min_size=2, max_size=4),
       st.integers(min_value=1, max_value=4))
def test_best_of_k_monotone_in_k(patterns, k):
    n = min(len(p) for p in patterns)
    traces = [trace_of(p[:n], name=f"l{i}")
              for i, p in enumerate(patterns)]
    run = MultiLinkRun(profile=StreamProfile(duration_s=n * 0.02),
                       traces=traces,
                       rssi_dbm=[-50.0 - i for i in range(len(traces))])
    k = min(k, len(traces))
    smaller = best_of(run, k)
    full = best_of(run, len(traces))
    assert full.loss_rate <= smaller.loss_rate + 1e-12


# --------------------------------------------------------------------- FEC

@given(loss_patterns, st.integers(min_value=1, max_value=8))
def test_fec_never_unrecovers(losses, k):
    data = trace_of(losses)
    n_blocks = (len(losses) + k - 1) // k
    parity = LinkTrace("p", np.arange(n_blocks) * 0.02 * k,
                       np.ones(n_blocks, dtype=bool),
                       np.full(n_blocks, 0.005))
    decoded = apply_fec(data, parity, FecConfig(block_size=k),
                        decode_deadline_s=10.0)
    # FEC can only add deliveries, never remove them.
    assert np.all(decoded.delivered >= data.delivered)


@given(loss_patterns, st.integers(min_value=2, max_value=6))
def test_fec_recovers_only_single_losses(losses, k):
    data = trace_of(losses)
    n_blocks = (len(losses) + k - 1) // k
    parity = LinkTrace("p", np.arange(n_blocks) * 0.02 * k,
                       np.ones(n_blocks, dtype=bool),
                       np.full(n_blocks, 0.005))
    decoded = apply_fec(data, parity, FecConfig(block_size=k),
                        decode_deadline_s=10.0)
    for block_start in range(0, len(losses), k):
        block = losses[block_start:block_start + k]
        lost = sum(block)
        recovered_here = (decoded.delivered[block_start:block_start
                                            + k].sum()
                          - (len(block) - lost))
        if lost == 1:
            assert recovered_here == 1
        elif lost > 1:
            assert recovered_here == 0


# ----------------------------------------------------------------- fitting

@given(loss_patterns)
def test_fit_gilbert_loss_rate_exact(losses):
    arr = np.array(losses, dtype=float)
    fit = fit_gilbert(arr)
    assert fit.loss_rate == float(arr.mean())
    assert fit.n_bursts == len(
        [1 for i, x in enumerate(losses)
         if x and (i == 0 or not losses[i - 1])])


@given(loss_patterns)
def test_fit_gilbert_sojourns_positive(losses):
    fit = fit_gilbert(np.array(losses, dtype=float))
    assert fit.params.mean_good_s > 0
    assert fit.params.mean_bad_s > 0


# --------------------------------------------------------------------- DCF

@given(st.lists(st.floats(min_value=1e-5, max_value=2e-3),
                min_size=1, max_size=15))
@settings(deadline=None)
def test_dcf_every_request_completes(airtimes):
    from repro.sim.random import RandomRouter
    from repro.wifi.dcf import DcfMedium
    sim = Simulator()
    dcf = DcfMedium(sim, RandomRouter(1).stream("dcf"))
    done = []
    for i, airtime in enumerate(airtimes):
        sim.call_at(0.0, dcf.request, f"s{i}", airtime,
                    lambda ok: done.append(ok))
    sim.run()
    assert len(done) == len(airtimes)


# ---------------------------------------------------------------- adaptive

@given(st.lists(st.floats(min_value=0.001, max_value=0.3),
                min_size=2, max_size=300))
def test_adaptive_playout_never_negative_losses(delays):
    n = len(delays)
    trace = LinkTrace("t", np.arange(n) * 0.02,
                      np.ones(n, dtype=bool), np.array(delays))
    result = AdaptivePlayoutBuffer().replay(trace)
    assert result.network_losses == 0
    assert 0 <= result.late_losses <= n
    assert result.played.sum() + result.late_losses == n


# ----------------------------------------------------------------- tracing

@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.sampled_from(["a", "b", "c"])),
                max_size=100),
       st.integers(min_value=1, max_value=20))
def test_event_log_capacity_invariant(events, capacity):
    log = EventLog(capacity=capacity)
    for t, kind in events:
        log.record(t, "src", kind)
    assert len(log) == min(len(events), capacity)
    assert log.dropped == max(len(events) - capacity, 0)
    assert sum(log.counts().values()) == len(log)
