"""Tests for the experiment CLI."""

import io

import pytest

from repro.cli import _COMMANDS, build_parser, main, run_command


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_shows_every_command():
    code, output = run_cli(["list"])
    assert code == 0
    for name in _COMMANDS:
        assert name in output


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_fig1_runs_and_renders():
    code, output = run_cli(["fig1"])
    assert code == 0
    assert "Figure 1" in output
    assert "BSSIDs" in output


def test_table3_with_runs_override():
    code, output = run_cli(["table3", "--runs", "5"])
    assert code == 0
    assert "Table 3" in output
    assert "Middlebox" in output


def test_seed_changes_stochastic_output():
    _, a = run_cli(["fig1", "--seed", "1"])
    _, b = run_cli(["fig1", "--seed", "2"])
    assert a != b


def test_seed_reproducible():
    _, a = run_cli(["fig1", "--seed", "3"])
    _, b = run_cli(["fig1", "--seed", "3"])
    # The timing footer differs; compare the rendered table only.
    strip = lambda s: "\n".join(line for line in s.splitlines()
                                if not line.startswith("["))
    assert strip(a) == strip(b)


def test_every_command_has_description():
    for name, (_, _, description) in _COMMANDS.items():
        assert description
        assert len(description) < 80


def test_run_command_prints_timing_footer():
    out = io.StringIO()
    run_command("fig1", None, 0, out=out)
    assert "[fig1:" in out.getvalue()
