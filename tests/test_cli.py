"""Tests for the experiment CLI."""

import io
import re

import pytest

from repro.cli import _COMMANDS, build_parser, main, run_command
from repro.runner import clear_memo


def strip_timing(text):
    """Drop the wall-clock status line; everything else is deterministic."""
    return "\n".join(line for line in text.splitlines()
                     if not re.search(r"; [0-9.]+s\]$", line))


def runner_digest(text):
    match = re.search(r"digest=([0-9a-f]+)\]", text)
    assert match, f"no runner footer in output:\n{text}"
    return match.group(1)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_shows_every_command():
    code, output = run_cli(["list"])
    assert code == 0
    for name in _COMMANDS:
        assert name in output


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_fig1_runs_and_renders():
    code, output = run_cli(["fig1"])
    assert code == 0
    assert "Figure 1" in output
    assert "BSSIDs" in output


def test_table3_with_runs_override():
    code, output = run_cli(["table3", "--runs", "5"])
    assert code == 0
    assert "Table 3" in output
    assert "Middlebox" in output


def test_seed_changes_stochastic_output():
    _, a = run_cli(["fig1", "--seed", "1"])
    _, b = run_cli(["fig1", "--seed", "2"])
    assert a != b


def test_seed_reproducible():
    _, a = run_cli(["fig1", "--seed", "3"])
    _, b = run_cli(["fig1", "--seed", "3"])
    # The timing footer differs; compare the rendered table only.
    strip = lambda s: "\n".join(line for line in s.splitlines()
                                if not line.startswith("["))
    assert strip(a) == strip(b)


def test_every_command_has_description():
    for name, (_, _, description) in _COMMANDS.items():
        assert description
        assert len(description) < 80


def test_run_command_prints_timing_footer():
    out = io.StringIO()
    run_command("fig1", None, 0, out=out)
    assert "[fig1:" in out.getvalue()


def test_list_and_unknown_command_exit_codes():
    code, _ = run_cli(["list"])
    assert code == 0
    with pytest.raises(SystemExit) as excinfo:
        run_cli(["definitely-not-a-command"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        run_cli([])
    assert excinfo.value.code == 2


def test_parallel_jobs_output_matches_serial():
    clear_memo()
    _, serial = run_cli(["table3", "--runs", "4", "--no-cache"])
    clear_memo()
    _, parallel = run_cli(["table3", "--runs", "4", "--no-cache",
                           "--jobs", "2"])
    assert runner_digest(serial) == runner_digest(parallel)
    assert strip_timing(serial).replace("jobs=1", "jobs=2") \
        == strip_timing(parallel)


def test_runner_footer_reports_cache_reuse(tmp_path):
    clear_memo()
    _, cold = run_cli(["table3", "--runs", "3",
                       "--cache-dir", str(tmp_path)])
    clear_memo()
    _, warm = run_cli(["table3", "--runs", "3",
                       "--cache-dir", str(tmp_path)])
    assert "executed=3 cached=0" in cold
    assert "executed=0 cached=3" in warm
    assert runner_digest(cold) == runner_digest(warm)
    # The rendered table is identical; only the telemetry counters in
    # the runner footer reflect the cache reuse.
    drop_footer = lambda s: "\n".join(
        line for line in strip_timing(s).splitlines()
        if not line.startswith("[runner"))
    assert drop_footer(cold) == drop_footer(warm)


def test_cache_max_bytes_prunes_store_after_command(tmp_path):
    from repro.runner import ResultCache
    clear_memo()
    _, output = run_cli(["table3", "--runs", "3",
                         "--cache-dir", str(tmp_path),
                         "--cache-max-bytes", "0"])
    assert "[cache table3: pruned 3 entries; 0 bytes retained]" in output
    assert ResultCache(tmp_path).size_bytes() == 0
    # A generous limit keeps every entry and reports nothing pruned.
    clear_memo()
    _, output = run_cli(["table3", "--runs", "3",
                         "--cache-dir", str(tmp_path),
                         "--cache-max-bytes", str(64 * 1024 * 1024)])
    assert "pruned 0 entries" in output
    assert len(list(ResultCache(tmp_path).entries())) == 3


def test_no_cache_flag_forces_recompute(tmp_path):
    clear_memo()
    run_cli(["table3", "--runs", "3", "--cache-dir", str(tmp_path)])
    clear_memo()
    _, output = run_cli(["table3", "--runs", "3",
                         "--cache-dir", str(tmp_path), "--no-cache"])
    assert "executed=3 cached=0" in output


def test_metrics_out_writes_canonical_json(tmp_path):
    import json
    clear_memo()
    metrics_file = tmp_path / "metrics.json"
    code, _ = run_cli(["table3", "--runs", "3", "--no-cache",
                       "--metrics-out", str(metrics_file)])
    assert code == 0
    text = metrics_file.read_text()
    payload = json.loads(text)
    assert payload["metrics"], "instrumented run exported no metrics"
    names = [entry["name"] for entry in payload["metrics"]]
    assert names == sorted(names)
    # Canonical form: compact separators, trailing newline only.
    assert text == json.dumps(payload, sort_keys=True,
                              separators=(",", ":")) + "\n"


def test_metrics_out_identical_serial_parallel_warm(tmp_path):
    """The PR's acceptance criterion at CLI level: --metrics-out bytes
    are identical for serial, --jobs 2 and warm-cache executions."""
    clear_memo()
    files = {name: tmp_path / f"{name}.json"
             for name in ("serial", "jobs2", "warm")}
    run_cli(["table3", "--runs", "3", "--cache-dir", str(tmp_path / "c"),
             "--metrics-out", str(files["serial"])])
    clear_memo()
    run_cli(["table3", "--runs", "3", "--no-cache", "--jobs", "2",
             "--metrics-out", str(files["jobs2"])])
    clear_memo()
    _, warm_out = run_cli(["table3", "--runs", "3",
                           "--cache-dir", str(tmp_path / "c"),
                           "--metrics-out", str(files["warm"])])
    assert "executed=0 cached=3" in warm_out
    serial = files["serial"].read_bytes()
    assert serial == files["jobs2"].read_bytes()
    assert serial == files["warm"].read_bytes()


def test_metrics_out_dash_writes_to_stdout():
    import json
    clear_memo()
    code, output = run_cli(["table3", "--runs", "2", "--no-cache",
                            "--metrics-out", "-"])
    assert code == 0
    last_line = output.rstrip("\n").splitlines()[-1]
    assert json.loads(last_line)["metrics"]


def test_metrics_out_rejected_for_all(tmp_path, capsys):
    code, _ = run_cli(["all", "--metrics-out", str(tmp_path / "m.json")])
    assert code == 2
    assert "--metrics-out" in capsys.readouterr().err
