"""Smoke tests: every example script must run cleanly end to end.

Examples rot silently otherwise.  Each runs as a subprocess with its
smallest sensible arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stderr[-2000:]}")
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "1")
    assert "DiversiFi" in out
    assert "recovered" in out


def test_strategy_shootout():
    out = run_example("strategy_shootout.py", "4")
    assert "cross-link" in out
    assert "stronger" in out


def test_middlebox_deployment():
    out = run_example("middlebox_deployment.py")
    assert "middlebox" in out
    assert "scalability" in out.lower()


def test_coexistence_with_tcp():
    out = run_example("coexistence_with_tcp.py", "2")
    assert "TCP throughput" in out


def test_measurement_studies():
    out = run_example("measurement_studies.py")
    assert "Table 1" in out
    assert "Table 2" in out
    assert "Figure 1" in out


def test_uplink_streaming():
    out = run_example("uplink_streaming.py")
    assert "hedged loss" in out


def test_inspect_session():
    out = run_example("inspect_session.py", "1")
    assert "timeline" in out.lower()
    assert "GilbertFit" in out


def test_calibrate_from_trace():
    out = run_example("calibrate_from_trace.py")
    assert "fitted model" in out
    assert "diversity gain" in out


def test_cloud_gaming():
    out = run_example("cloud_gaming.py", "1")
    assert "stalls/min" in out
    assert "cross-link" in out
