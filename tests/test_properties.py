"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bursts import burst_lengths
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.windows import window_loss_rates, worst_window_loss
from repro.core.packet import LinkTrace, StreamTrace, merge_traces
from repro.core.replication import PairedRun
from repro.core.config import StreamProfile
from repro.core.strategies import cross_link, divert
from repro.sim import Simulator
from repro.traffic.rtp import RtpHeader
from repro.voice.concealment import account_concealment
from repro.voice.g711 import G711Codec, SAMPLES_PER_FRAME
from repro.voice.playout import PlayoutBuffer
from repro.voice.quality import emodel_r_factor, r_to_mos


# ------------------------------------------------------------- strategies

loss_patterns = st.lists(st.booleans(), min_size=1, max_size=300)


def trace_of(losses, name="t", spacing=0.02):
    delivered = [not x for x in losses]
    delays = [0.005 if d else math.nan for d in delivered]
    return LinkTrace(name, np.arange(len(losses)) * spacing,
                     delivered, delays)


def paired(losses_a, losses_b):
    n = len(losses_a)
    profile = StreamProfile(duration_s=n * 0.02)
    return PairedRun(profile=profile, trace_a=trace_of(losses_a, "A"),
                     trace_b=trace_of(losses_b, "B"))


@given(loss_patterns, loss_patterns)
def test_cross_link_is_union(losses_a, losses_b):
    n = min(len(losses_a), len(losses_b))
    losses_a, losses_b = losses_a[:n], losses_b[:n]
    run = paired(losses_a, losses_b)
    merged = cross_link(run)
    for i in range(n):
        expected = (not losses_a[i]) or (not losses_b[i])
        assert bool(merged.delivered[i]) == expected


@given(loss_patterns, loss_patterns)
def test_cross_link_never_worse_than_either(losses_a, losses_b):
    n = min(len(losses_a), len(losses_b))
    run = paired(losses_a[:n], losses_b[:n])
    merged = cross_link(run)
    assert merged.loss_rate <= run.trace_a.loss_rate + 1e-12
    assert merged.loss_rate <= run.trace_b.loss_rate + 1e-12


@given(loss_patterns, loss_patterns,
       st.integers(min_value=1, max_value=5))
def test_divert_outcome_always_one_of_the_links(losses_a, losses_b, h):
    n = min(len(losses_a), len(losses_b))
    run = paired(losses_a[:n], losses_b[:n])
    trace = divert(run, window_h=h, threshold_t=1)
    for i in range(n):
        assert bool(trace.delivered[i]) in (
            not losses_a[i], not losses_b[i])


@given(loss_patterns)
def test_merge_idempotent(losses):
    a = trace_of(losses)
    merged = merge_traces([a, a])
    assert np.array_equal(merged.delivered, a.delivered)


# ---------------------------------------------------------------- windows

@given(loss_patterns)
def test_worst_window_bounds(losses):
    arr = np.array(losses, dtype=float)
    worst = worst_window_loss(arr)
    assert 0.0 <= worst <= 1.0
    assert worst >= arr.mean() - 1e-12   # worst window >= overall average


@given(loss_patterns, st.floats(min_value=0.1, max_value=10.0))
def test_window_rates_average_back(losses, window_s):
    arr = np.array(losses, dtype=float)
    rates = window_loss_rates(arr, window_s=window_s)
    per_window = max(int(round(window_s / 0.02)), 1)
    # Weighted mean of window rates equals the overall loss rate.
    weights = [min(per_window, len(arr) - i * per_window)
               for i in range(len(rates))]
    weighted = sum(r * w for r, w in zip(rates, weights)) / sum(weights)
    assert abs(weighted - arr.mean()) < 1e-9


# ----------------------------------------------------------------- bursts

@given(loss_patterns)
def test_burst_lengths_partition_losses(losses):
    arr = np.array(losses, dtype=float)
    lengths = burst_lengths(arr)
    assert sum(lengths) == int(arr.sum())
    assert all(length >= 1 for length in lengths)


@given(loss_patterns)
def test_burst_count_bounded_by_alternations(losses):
    lengths = burst_lengths(np.array(losses, dtype=float))
    assert len(lengths) <= (len(losses) + 1) // 2 + 1


# ------------------------------------------------------------ concealment

@given(loss_patterns)
def test_concealment_accounts_every_missing_frame(losses):
    trace = trace_of(losses)
    playout = PlayoutBuffer(0.1).replay(trace)
    acc = account_concealment(playout)
    missing = int(np.sum(~playout.played))
    assert acc.interpolated_frames + acc.extrapolated_frames == missing
    assert acc.played_frames + missing == acc.n_frames


# ------------------------------------------------------------------- CDF

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_cdf_monotone_and_bounded(samples):
    cdf = EmpiricalCdf(samples)
    xs = sorted(samples)
    values = [cdf.evaluate(x) for x in xs]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    assert cdf.evaluate(xs[-1]) == 1.0


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=2, max_size=100),
       st.floats(min_value=0.0, max_value=1.0))
def test_cdf_quantile_within_range(samples, q):
    cdf = EmpiricalCdf(samples)
    value = cdf.quantile(q)
    assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9


# ----------------------------------------------------------------- E-model

@given(st.floats(min_value=0.0, max_value=0.5),
       st.floats(min_value=0.0, max_value=0.5),
       st.floats(min_value=0.0, max_value=0.5))
def test_emodel_monotone_in_loss(loss1, loss2, delay):
    lo, hi = sorted((loss1, loss2))
    assert (emodel_r_factor(hi, delay) <= emodel_r_factor(lo, delay) + 1e-9)


@given(st.floats(min_value=0.0, max_value=120.0))
def test_mos_bounds(r):
    mos = r_to_mos(r)
    assert 1.0 <= mos <= 4.5


@given(st.floats(min_value=0.0, max_value=0.3),
       st.floats(min_value=1.0, max_value=10.0))
def test_burstier_loss_never_scores_better(loss, burst_len):
    bursty = emodel_r_factor(loss, 0.05, mean_burst_len=burst_len)
    random = emodel_r_factor(loss, 0.05, mean_burst_len=1.0)
    assert bursty <= random + 1e-9


# -------------------------------------------------------------------- G711

@given(st.lists(st.integers(min_value=-32768, max_value=32767),
                min_size=SAMPLES_PER_FRAME, max_size=SAMPLES_PER_FRAME))
def test_g711_roundtrip_is_stable(samples):
    pcm = np.array(samples, dtype=np.int16)
    once = G711Codec.decode(G711Codec.encode(pcm))
    twice = G711Codec.decode(G711Codec.encode(once))
    # Companding is a projection: a second pass changes (almost) nothing.
    assert np.max(np.abs(once.astype(int) - twice.astype(int))) <= 1


@given(st.lists(st.integers(min_value=-30000, max_value=30000),
                min_size=SAMPLES_PER_FRAME, max_size=SAMPLES_PER_FRAME))
def test_g711_error_bounded(samples):
    pcm = np.array(samples, dtype=np.int16)
    decoded = G711Codec.decode(G711Codec.encode(pcm))
    error = np.abs(decoded.astype(float) - pcm.astype(float))
    # Mu-law quantization error grows with amplitude; bound loosely.
    assert np.all(error <= np.maximum(np.abs(pcm.astype(float)) * 0.1,
                                      200.0))


# --------------------------------------------------------------------- RTP

@given(st.integers(min_value=0, max_value=127),
       st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.booleans())
def test_rtp_roundtrip(pt, seq, ts, ssrc, marker):
    header = RtpHeader(payload_type=pt, sequence_number=seq,
                       timestamp=ts, ssrc=ssrc, marker=marker)
    assert RtpHeader.unpack(header.pack()) == header


# ------------------------------------------------------------- StreamTrace

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=49),
                          st.floats(min_value=0.0, max_value=2.0)),
                max_size=200))
def test_stream_trace_invariants(arrival_events):
    trace = StreamTrace(n_packets=50, send_times=np.arange(50) * 0.02)
    firsts = 0
    for seq, time in arrival_events:
        if trace.record_arrival(seq, time):
            firsts += 1
    assert firsts == len(trace.arrivals)
    assert trace.duplicates == len(arrival_events) - firsts
    assert 0.0 <= trace.loss_rate <= 1.0
    # Recorded arrival per seq is the earliest seen.
    for seq, time in arrival_events:
        assert trace.arrivals[seq] <= time + 1e-12


# ------------------------------------------------------------------ engine

@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), max_size=50))
def test_engine_fires_in_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.call_at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)
