"""Tests for repository tooling (API doc generation)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_api_doc_generator_runs(tmp_path):
    output = tmp_path / "api.md"
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "gen_api_docs.py"),
         str(output)],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    text = output.read_text()
    assert "# API reference" in text
    assert "repro.core.client" in text
    assert "0x" not in text          # no memory addresses -> diff-stable


def test_api_doc_generator_deterministic(tmp_path):
    out_a = tmp_path / "a.md"
    out_b = tmp_path / "b.md"
    for out in (out_a, out_b):
        subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py"),
             str(out)], capture_output=True, text=True, check=True)
    assert out_a.read_text() == out_b.read_text()


def test_checked_in_api_doc_is_current():
    """docs/api.md must be regenerated when the public API changes."""
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        fresh = Path(tmp) / "api.md"
        subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py"),
             str(fresh)], capture_output=True, text=True, check=True)
        assert (REPO / "docs" / "api.md").read_text() \
            == fresh.read_text()
