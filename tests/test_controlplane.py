"""Tests for the QoE control plane: topology, link metrics, controller.

The topology/controller tests drive the event engine with *stub* links
(deterministic loss and delay, no channel randomness) so every assertion
is exact; the end-to-end determinism test uses the real runner task.
"""

import math

import pytest

from repro.core.config import StreamProfile
from repro.core.packet import Packet
from repro.experiments.controlplane import controller_run_metrics
from repro.net.controller import (
    CONTROLLER_MODES,
    ControllerConfig,
    QoeController,
)
from repro.net.middlebox import Middlebox
from repro.net.netmetrics import (
    PortSample,
    PortStats,
    PortStatsReader,
    RollingLinkMetrics,
    link_mos,
)
from repro.net.topology import (
    ClientCapture,
    StreamSource,
    build_npath_topology,
)
from repro.sim import Simulator


class _StubRecord:
    def __init__(self, delivered, arrival_time, delay):
        self.delivered = delivered
        self.arrival_time = arrival_time
        self.delay = delay


class _StubLink:
    """A WifiLink stand-in with scripted loss and fixed delay."""

    def __init__(self, name, rssi=-50.0, loss=0.0, delay_s=0.004):
        self.name = name
        self.rssi = rssi
        self.loss = loss          # tests mutate this mid-run
        self.delay_s = delay_s
        self._count = 0

    def rssi_dbm(self, time):
        return self.rssi

    def transmit(self, seq, send_time, frame_bytes):
        # Deterministic thinning: every k-th transmission is lost when
        # loss = 1/k (exact, no RNG).
        self._count += 1
        lost = self.loss > 0 and (self._count * self.loss) % 1.0 < self.loss
        if lost:
            return _StubRecord(False, math.nan, math.nan)
        return _StubRecord(True, send_time + self.delay_s, self.delay_s)


def build_stub_topology(sim, n=3, losses=(), rssis=()):
    links = [
        _StubLink(f"ap{i}",
                  rssi=rssis[i] if i < len(rssis) else -50.0 - i,
                  loss=losses[i] if i < len(losses) else 0.0)
        for i in range(n)]
    client = ClientCapture(sim)
    topo = build_npath_topology(sim, links, client)
    return topo, client, links


# ---------------------------------------------------------- topology

def test_candidate_paths_enumerates_every_chain():
    sim = Simulator()
    topo, _, _ = build_stub_topology(sim, n=3)
    found = topo.candidate_paths()
    assert [p.name for p in found] == ["ap0", "ap1", "ap2"]
    assert found[1].nodes == ("server", "core", "edge1", "ap1", "client")
    assert found[1].switches == ("core", "edge1")
    assert topo.paths == found


def test_install_flow_single_path_forwards_end_to_end():
    sim = Simulator()
    topo, client, _ = build_stub_topology(sim, n=3)
    topo.install_flow("rt0", [topo.paths[0]])
    profile = StreamProfile(duration_s=1.0)
    StreamSource(sim, topo.ingress, profile, flow_id="rt0").start()
    sim.run()
    trace = client.trace(profile)
    assert int(trace.delivered.sum()) == profile.n_packets
    assert client.duplicates == 0


def test_install_flow_two_paths_replicates_and_dedups():
    sim = Simulator()
    topo, client, _ = build_stub_topology(sim, n=3)
    topo.install_flow("rt0", list(topo.paths[:2]))
    profile = StreamProfile(duration_s=1.0)
    StreamSource(sim, topo.ingress, profile, flow_id="rt0").start()
    sim.run()
    trace = client.trace(profile)
    assert int(trace.delivered.sum()) == profile.n_packets
    assert client.duplicates == profile.n_packets


def test_reinstall_replaces_rules_not_accumulates():
    sim = Simulator()
    topo, client, _ = build_stub_topology(sim, n=3)
    topo.install_flow("rt0", list(topo.paths))
    topo.install_flow("rt0", [topo.paths[0]])     # shrink back to one
    sim.call_at(0.0, topo.ingress,
                Packet(seq=0, send_time=0.0, flow_id="rt0"))
    sim.run()
    assert client.duplicates == 0


# -------------------------------------------------------- netmetrics

def test_port_sample_rates():
    sample = PortSample(sent=10, delivered=8, delay_sum_s=0.08,
                        queue_depth=2)
    assert sample.loss_rate == pytest.approx(0.2)
    assert sample.mean_delay_s == pytest.approx(0.01)
    empty = PortSample(sent=0, delivered=0, delay_sum_s=0.0,
                       queue_depth=0)
    assert empty.loss_rate == 0.0
    assert empty.mean_delay_s == 0.0


def test_port_stats_reader_returns_deltas():
    stats = PortStats()
    reader = PortStatsReader(stats)
    stats.record(True, 0.01)
    stats.record(False, 0.0)
    first = reader.poll()
    assert (first.sent, first.delivered) == (2, 1)
    stats.record(True, 0.02)
    second = reader.poll()
    assert (second.sent, second.delivered) == (1, 1)
    assert second.delay_sum_s == pytest.approx(0.02)


def test_rolling_metrics_ewma_and_empty_window():
    rolling = RollingLinkMetrics(alpha=0.5)
    rolling.update(PortSample(sent=10, delivered=5, delay_sum_s=0.05,
                              queue_depth=0))
    assert rolling.loss_rate == pytest.approx(0.5)   # first sample seeds
    rolling.update(PortSample(sent=10, delivered=10, delay_sum_s=0.1,
                              queue_depth=1))
    assert rolling.loss_rate == pytest.approx(0.25)  # EWMA toward 0
    before = rolling.loss_rate
    rolling.update(PortSample(sent=0, delivered=0, delay_sum_s=0.0,
                              queue_depth=0))
    assert rolling.loss_rate == before   # silence is not evidence


def test_link_mos_monotone_in_loss_and_delay():
    clean = link_mos(0.0, 0.05)
    assert clean > 4.0
    assert link_mos(0.05, 0.05) < clean
    assert link_mos(0.0, 0.40) < clean


# -------------------------------------------------------- controller

def run_controller(sim, topo, mode, middlebox=None, duration=6.0,
                   config=None):
    config = config or ControllerConfig(probes_per_poll=10)
    ctl = QoeController(sim, topo, "rt0", mode, config=config,
                        middlebox=middlebox)
    if mode == "hedge":
        ctl.register_hedge_flow()
    ctl.start()
    profile = StreamProfile(duration_s=duration)
    StreamSource(sim, topo.ingress, profile, flow_id="rt0").start()
    sim.run(until=duration + 1.0)
    return ctl, profile


def test_controller_rejects_unknown_mode_and_missing_middlebox():
    sim = Simulator()
    topo, _, _ = build_stub_topology(sim, n=2)
    with pytest.raises(ValueError):
        QoeController(sim, topo, "rt0", "flood")
    with pytest.raises(ValueError):
        QoeController(sim, topo, "rt0", "hedge")    # no middlebox


def test_controller_initial_preference_orders_by_rssi():
    sim = Simulator()
    topo, _, _ = build_stub_topology(sim, n=3,
                                     rssis=(-70.0, -50.0, -60.0))
    ctl = QoeController(sim, topo, "rt0", "qoe-route")
    assert ctl.initial_preference() == ("ap1", "ap2", "ap0")


def test_qoe_route_reroutes_away_from_lossy_primary():
    sim = Simulator()
    # Strongest RSSI starts as primary but loses 30% of transmissions;
    # ap1 is clean.
    topo, client, _ = build_stub_topology(
        sim, n=3, losses=(1 / 3, 0.0, 0.0),
        rssis=(-40.0, -55.0, -60.0))
    ctl, profile = run_controller(sim, topo, "qoe-route")
    assert ctl.active_paths == ("ap1",)
    assert ctl.stats.reroutes >= 1
    assert ctl.stats.polls >= 5
    # After settling on the clean path, deliveries flow again.
    assert client.trace(profile).delivered[-50:].all()


def test_qoe_route_stays_put_without_margin():
    sim = Simulator()
    topo, _, _ = build_stub_topology(sim, n=3)   # all clean and equal
    ctl, _ = run_controller(sim, topo, "qoe-route")
    assert ctl.stats.reroutes == 0
    assert ctl.active_paths == ("ap0",)


def test_hedge_valve_opens_and_closes_with_primary_loss():
    sim = Simulator()
    topo, client, links = build_stub_topology(
        sim, n=3, losses=(0.0, 0.0, 0.0), rssis=(-40.0, -50.0, -60.0))
    mbox = Middlebox(sim)

    def lossy():
        links[0].loss = 0.5

    def clean():
        links[0].loss = 0.0

    sim.call_at(1.2, lossy)
    sim.call_at(3.2, clean)
    # A wider valve hysteresis band so the EWMA decays below the stop
    # threshold within the test's horizon.
    ctl, _ = run_controller(
        sim, topo, "hedge", middlebox=mbox, duration=8.0,
        config=ControllerConfig(probes_per_poll=10,
                                hedge_start_loss=0.1,
                                hedge_stop_loss=0.05))
    assert ctl.stats.mbox_starts >= 1
    assert ctl.stats.mbox_stops >= 1
    assert mbox.stats.forwarded > 0
    # The hedge pair stays fixed; no reroutes in hedge mode.
    assert ctl.stats.reroutes == 0
    assert ctl.active_paths == ("ap0", "ap1")


def test_replicate_activates_every_path_and_client_dedups():
    sim = Simulator()
    topo, client, _ = build_stub_topology(sim, n=3)
    ctl, profile = run_controller(sim, topo, "replicate")
    assert ctl.active_paths == ("ap0", "ap1", "ap2")
    trace = client.trace(profile)
    assert int(trace.delivered.sum()) == profile.n_packets
    # Two extra copies per packet arrive and are all deduplicated.
    assert client.duplicates == 2 * profile.n_packets


def test_probes_keep_inactive_path_metrics_fresh():
    sim = Simulator()
    topo, _, _ = build_stub_topology(sim, n=3, losses=(0.0, 0.0, 0.5))
    ctl, _ = run_controller(sim, topo, "qoe-route")
    # ap2 never carried flow traffic, yet its rolling loss reflects the
    # scripted 50% thinning because probes sample it every poll.
    assert ctl.path_metrics("ap2").loss_rate == pytest.approx(0.5,
                                                              abs=0.1)
    assert ctl.stats.probe_packets == ctl.stats.polls * 3 * 10


# ------------------------------------------------------ runner task

def test_controller_task_is_deterministic():
    kwargs = {
        "root_seed": 3, "scenario": "mp_office", "n_paths": 3,
        "profile": {"duration_s": 5.0},
        "controller": {"poll_interval_s": 0.5},
    }
    first = controller_run_metrics(0, **kwargs)
    second = controller_run_metrics(0, **kwargs)
    assert first == second
    assert set(first) == set(CONTROLLER_MODES)
    for mode in CONTROLLER_MODES:
        assert first[mode]["scenario"] == "mp_office"
        assert first[mode]["polls"] > 0


def test_controller_task_modes_share_channel_parameters():
    payload = controller_run_metrics(
        1, root_seed=9, scenario="mix", n_paths=3,
        profile={"duration_s": 5.0}, controller={})
    # The mix draw must agree across modes (same fork salt).
    names = {payload[mode]["scenario"] for mode in CONTROLLER_MODES}
    assert len(names) == 1
    # Replication sends every packet down every path.
    assert payload["replicate"]["copies_per_packet"] == pytest.approx(
        3.0, abs=0.05)
    assert payload["qoe-route"]["copies_per_packet"] == pytest.approx(
        1.0, abs=0.05)
