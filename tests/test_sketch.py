"""Tests for the mergeable streaming aggregators (repro.analysis.sketch)."""

import json

import numpy as np
import pytest

from repro.analysis.sketch import (
    GridCdf,
    LabeledCounts,
    MomentSketch,
    SketchError,
    wilson_interval,
)
from repro.sim import RandomRouter

# ------------------------------------------------------------ LabeledCounts


def _counts(rows):
    out = LabeledCounts()
    for label, n, poor in rows:
        out.observe(label, n, poor)
    return out


def test_labeled_counts_observe_and_pcr():
    c = _counts([(("all", "EE"), 10, 2), (("all", "EE"), 5, 1)])
    assert c.n(("all", "EE")) == 15
    assert c.poor(("all", "EE")) == 3
    assert c.pcr(("all", "EE")) == 3 / 15
    assert np.isnan(c.pcr(("missing",)))


def test_labeled_counts_rejects_invalid():
    c = LabeledCounts()
    with pytest.raises(SketchError):
        c.observe(("x",), 3, 4)      # poor > n
    with pytest.raises(SketchError):
        c.observe(("x",), -1, 0)


def test_labeled_counts_merge_assoc_commutative():
    """Counter merges are exact integer adds: any association or order
    of the same multiset of sketches yields identical counts."""
    a = _counts([(("s", "EE"), 4, 1)])
    b = _counts([(("s", "EE"), 6, 2), (("s", "WW"), 3, 3)])
    c = _counts([(("t", "EW"), 7, 0)])

    left = _counts([]).merge(a).merge(b).merge(c)
    right = _counts([]).merge(c).merge(_counts([]).merge(b).merge(a))
    assert left.counts == right.counts


def test_labeled_counts_payload_roundtrip_byte_stable():
    c = _counts([(("b", "EW"), 5, 2), (("a", "EE"), 9, 1)])
    payload = c.to_payload()
    again = LabeledCounts.from_payload(payload)
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(again.to_payload(), sort_keys=True)
    assert again.counts == c.counts


def test_labeled_counts_malformed_payload():
    with pytest.raises(SketchError):
        LabeledCounts.from_payload([["only-label"]])


# ----------------------------------------------------------------- GridCdf


def test_gridcdf_quantile_error_bounded():
    """In-grid quantiles are within one bin width of the exact value."""
    rng = RandomRouter(0).stream("sketch")
    data = rng.normal(2.5, 0.7, size=20_000)
    cdf = GridCdf(0.0, 5.0, 100)
    cdf.observe_array(data)
    inside = data[(data >= 0.0) & (data < 5.0)]
    for q in (0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99):
        exact = float(np.quantile(inside, q))
        assert abs(cdf.quantile(q) - exact) <= cdf.bin_width + 1e-12


def test_gridcdf_merge_equals_single_pass():
    rng = RandomRouter(1).stream("sketch")
    data = rng.random(size=9000) * 6.0 - 0.5     # spills both ends
    whole = GridCdf(0.0, 5.0, 50)
    whole.observe_array(data)
    merged = GridCdf(0.0, 5.0, 50)
    for chunk in np.array_split(data, 7):
        part = GridCdf(0.0, 5.0, 50)
        part.observe_array(chunk)
        merged.merge(part)
    assert merged.to_payload() == whole.to_payload()


def test_gridcdf_cdf_semantics():
    cdf = GridCdf(0.0, 10.0, 10)
    cdf.observe_array(np.array([-1.0, 0.5, 1.5, 2.5, 25.0]))
    assert cdf.below == 1 and cdf.above == 1
    assert cdf.cdf(-5.0) == 0.0
    assert cdf.cdf(100.0) == 1.0
    assert cdf.cdf(2.9) == pytest.approx(4 / 5)
    assert cdf.min_value == -1.0 and cdf.max_value == 25.0


def test_gridcdf_grid_mismatch_raises():
    with pytest.raises(SketchError):
        GridCdf(0.0, 5.0, 10).merge(GridCdf(0.0, 5.0, 20))


def test_gridcdf_payload_roundtrip_byte_stable():
    cdf = GridCdf(0.0, 5.0, 25)
    cdf.observe_array(RandomRouter(2).stream("sketch").random(size=500)
                      * 7.0)
    payload = cdf.to_payload()
    again = GridCdf.from_payload(payload)
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(again.to_payload(), sort_keys=True)


def test_gridcdf_empty():
    cdf = GridCdf(0.0, 1.0, 4)
    assert np.isnan(cdf.quantile(0.5))
    assert np.isnan(cdf.cdf(0.5))


# ------------------------------------------------------------- MomentSketch


def test_moment_sketch_matches_numpy():
    rng = RandomRouter(3).stream("sketch")
    data = rng.lognormal(0.0, 0.8, size=5000)
    sketch = MomentSketch()
    for chunk in np.array_split(data, 11):
        sketch.observe_array(chunk)
    assert sketch.count == data.size
    assert sketch.mean == pytest.approx(float(np.mean(data)), rel=1e-12)
    assert sketch.variance == pytest.approx(
        float(np.var(data, ddof=1)), rel=1e-9)


def test_moment_sketch_spec_order_merge_deterministic():
    """Merging the same parts in the same (spec) order twice is
    bit-identical — the contract the population drivers rely on."""
    rng = RandomRouter(4).stream("sketch")
    parts = [rng.normal(0.0, 1.0, size=n) for n in (17, 400, 3, 2000)]

    def fold():
        total = MomentSketch()
        for part in parts:
            piece = MomentSketch()
            piece.observe_array(part)
            total.merge(piece)
        return total

    a, b = fold(), fold()
    assert (a.count, a.mean, a.m2) == (b.count, b.mean, b.m2)


def test_moment_sketch_payload_roundtrip():
    sketch = MomentSketch()
    sketch.observe_array(np.array([1.0, 2.0, 4.0]))
    again = MomentSketch.from_payload(sketch.to_payload())
    assert (again.count, again.mean, again.m2) == \
        (sketch.count, sketch.mean, sketch.m2)


def test_moment_sketch_degenerate():
    sketch = MomentSketch()
    assert np.isnan(sketch.variance)
    sketch.observe_array(np.array([2.0]))
    assert sketch.count == 1 and sketch.mean == 2.0
    assert np.isnan(sketch.variance)


# ---------------------------------------------------------- wilson_interval


def test_wilson_interval_basics():
    lo, hi = wilson_interval(0, 0)
    assert (lo, hi) == (0.0, 1.0)
    lo, hi = wilson_interval(10, 100)
    assert 0.0 < lo < 0.10 < hi < 1.0


def test_wilson_interval_tightens_with_n():
    narrow = wilson_interval(1000, 10_000)
    wide = wilson_interval(10, 100)
    assert narrow[1] - narrow[0] < wide[1] - wide[0]


def test_wilson_interval_invalid():
    with pytest.raises(SketchError):
        wilson_interval(5, 4)
    with pytest.raises(SketchError):
        wilson_interval(-1, 4)
