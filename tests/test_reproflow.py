"""Tests for the project-wide semantic analysis (``tools/reproflow``).

Each rule family (UNT / LIF / CFG) gets triggering, clean, and
suppressed fixtures; the index is tested for cross-module resolution
and ambiguity guarding; and the real CLI is run over ``src/`` (must be
clean against the committed baseline) and over seeded violations (must
fail).
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from reproflow.engine import analyze_paths, analyze_source   # noqa: E402
from reproflow.index import build_index                      # noqa: E402
from reproflow.rules import ALL_RULES                        # noqa: E402
import ast                                                   # noqa: E402


# A miniature project the fixtures resolve against: schemas live in a
# *different* module than the code under analysis, exactly as in the
# real tree (pass 1 must carry units and fields across files).
CORE = textwrap.dedent('''
    from dataclasses import dataclass

    @dataclass
    class Packet:
        seq: int
        send_time: float
        size_bytes: int = 160
        flow_id: str = "rt0"
        link: str = ""
        is_duplicate: bool = False

        def copy_for_link(self, link, is_duplicate=True):
            return Packet(seq=self.seq, send_time=self.send_time,
                          size_bytes=self.size_bytes, flow_id=self.flow_id,
                          link=link, is_duplicate=is_duplicate)

    @dataclass
    class DeliveryRecord:
        seq: int
        send_time: float
        delivered: bool
        arrival_time: float = float("nan")

    @dataclass
    class ClientConfig:
        inter_packet_spacing_s: float = 0.02
        playout_deadline_ms: float = 150.0

    def schedule(timeout_s: float) -> float:
        return timeout_s
''')


def analyze(source, path="pkg/module.py", rules=None):
    return analyze_source(textwrap.dedent(source), path, rules=rules,
                          extra={"core/schema.py": CORE})


def rule_ids(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------------
# Per-family fixtures: (trigger source, clean source, suppressed source).
# ------------------------------------------------------------------

FAMILY_FIXTURES = {
    "UNT": (
        """
        def jitter(a_ms, b_s):
            return a_ms + b_s
        """,
        """
        def jitter(a_ms, b_s):
            return a_ms + b_s * 1000.0
        """,
        """
        def jitter(a_ms, b_s):
            return a_ms + b_s  # reproflow: disable=UNT001
        """,
    ),
    "LIF": (
        """
        def forward(queue):
            p = Packet(seq=1, send_time=0.0)
            queue.append(p)
            p.link = "secondary"
        """,
        """
        def forward(queue):
            p = Packet(seq=1, send_time=0.0)
            p.link = "secondary"
            queue.append(p)
        """,
        """
        def forward(queue):
            p = Packet(seq=1, send_time=0.0)
            queue.append(p)
            p.link = "secondary"  # reproflow: disable=LIF001
        """,
    ),
    "CFG": (
        """
        def build():
            return ClientConfig(inter_packet_spacing=0.02)
        """,
        """
        def build():
            return ClientConfig(inter_packet_spacing_s=0.02)
        """,
        """
        def build():
            return ClientConfig(inter_packet_spacing=0.02)  # reproflow: disable=CFG001
        """,
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_triggers(family):
    trigger, _, _ = FAMILY_FIXTURES[family]
    found = rule_ids(analyze(trigger))
    assert any(r.startswith(family) for r in found), found


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_clean(family):
    _, clean, _ = FAMILY_FIXTURES[family]
    assert analyze(clean) == []


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_suppressed_inline(family):
    _, _, suppressed = FAMILY_FIXTURES[family]
    assert analyze(suppressed) == []


def test_reprolint_disable_comment_does_not_silence_reproflow():
    source = """
    def jitter(a_ms, b_s):
        return a_ms + b_s  # reprolint: disable=UNT001
    """
    assert "UNT001" in rule_ids(analyze(source))


# ------------------------------------------------------------------ UNT

def test_unt001_comparison():
    found = analyze("""
    def late(deadline_ms, elapsed_s):
        return elapsed_s > deadline_ms
    """)
    assert rule_ids(found) == ["UNT001"]


def test_unt001_conversion_factors_are_clean():
    assert analyze("""
    def convert(one_way_delay_s, d_ms):
        a_ms = max(one_way_delay_s, 0.0) * 1000.0
        b_s = d_ms / 1000.0
        c_s = d_ms * 0.001
        return a_ms + d_ms, b_s + c_s
    """) == []


def test_unt001_dbm_plus_db_is_legal_rf_math():
    assert analyze("""
    def rssi(base_dbm, fade_db, penalty_db):
        return base_dbm + fade_db - penalty_db
    """) == []


def test_unt002_keyword_argument_cross_module():
    found = analyze("""
    def arm(delay_ms):
        return schedule(timeout_s=delay_ms)
    """)
    assert rule_ids(found) == ["UNT002"]


def test_unt002_positional_argument():
    found = analyze("""
    def arm(delay_ms):
        return schedule(delay_ms)
    """)
    assert rule_ids(found) == ["UNT002"]


def test_unt002_dataclass_field_cross_module():
    found = analyze("""
    def build(deadline_s):
        return ClientConfig(playout_deadline_ms=deadline_s)
    """)
    assert rule_ids(found) == ["UNT002"]


def test_unt002_unknown_unit_never_flags():
    assert analyze("""
    def arm(delay):
        return schedule(timeout_s=delay)
    """) == []


def test_unt003_assignment():
    found = analyze("""
    def convert(spacing_ms):
        spacing_s = spacing_ms
        return spacing_s
    """)
    assert rule_ids(found) == ["UNT003"]


def test_unt003_learns_units_through_locals():
    found = analyze("""
    def gap(config):
        spacing = config.inter_packet_spacing_s
        gap_ms = spacing
        return gap_ms
    """)
    assert rule_ids(found) == ["UNT003"]


# ------------------------------------------------------------------ LIF

def test_lif001_mutation_after_handoff_via_method():
    found = analyze("""
    def send(ap, base):
        replica = base.copy_for_link("secondary")
        ap.enqueue(replica)
        replica.is_duplicate = False
    """)
    assert rule_ids(found) == ["LIF001"]


def test_lif001_rebinding_clears_tracking():
    assert analyze("""
    def send(ap, base):
        p = Packet(seq=1, send_time=0.0)
        ap.enqueue(p)
        p = Packet(seq=2, send_time=0.02)
        p.link = "primary"
    """) == []


def test_lif002_hand_rolled_replica():
    found = analyze("""
    def replicate(base):
        return Packet(seq=base.seq, send_time=base.send_time,
                      flow_id=base.flow_id, link="secondary")
    """)
    assert rule_ids(found) == ["LIF002"]


def test_lif002_fresh_packet_is_clean():
    # Building a brand-new packet (at most one field mirrored from
    # another object) is construction, not replication.
    assert analyze("""
    def emit(sender, seq, now):
        return Packet(seq=seq, send_time=now, flow_id=sender.flow_id)
    """) == []


def test_lif003_unguarded_delay_read():
    found = analyze("""
    def sample(link, seq, t):
        r = link.transmit(seq, t, 160)
        return r.delay
    """)
    assert rule_ids(found) == ["LIF003"]


def test_lif003_delivered_guard_is_clean():
    assert analyze("""
    def sample(link, seq, t):
        r = link.transmit(seq, t, 160)
        if r.delivered:
            return r.delay
        return 0.0
    """) == []


def test_lif003_nan_check_counts_as_guard():
    assert analyze("""
    import math
    def sample(link, seq, t):
        r = link.transmit(seq, t, 160)
        d = r.delay
        return 0.0 if math.isnan(d) else d
    """) == []


def test_lif003_records_iteration():
    found = analyze("""
    def total(trace):
        acc = 0.0
        for r in trace.records():
            acc += r.arrival_time
        return acc
    """)
    assert rule_ids(found) == ["LIF003"]


# ------------------------------------------------------------------ CFG

def test_cfg001_suggests_close_match():
    found = analyze("""
    def build():
        return ClientConfig(inter_packet_spacing=0.02)
    """)
    assert found[0].rule == "CFG001"
    assert "inter_packet_spacing_s" in found[0].message


def test_cfg001_function_keyword():
    found = analyze("""
    def arm():
        return schedule(timeout=1.0)
    """)
    assert rule_ids(found) == ["CFG001"]


def test_cfg001_dataclasses_replace():
    found = analyze("""
    from dataclasses import replace
    def tweak():
        cfg = ClientConfig()
        return replace(cfg, playout_deadline=100.0)
    """)
    assert rule_ids(found) == ["CFG001"]


def test_cfg002_dict_literal_spread():
    found = analyze("""
    def build():
        overrides = {"inter_packet_spacing_ms": 20.0}
        return ClientConfig(**overrides)
    """)
    assert rule_ids(found) == ["CFG002"]


def test_cfg002_valid_keys_clean():
    assert analyze("""
    def build():
        overrides = {"inter_packet_spacing_s": 0.02,
                     "playout_deadline_ms": 150.0}
        return ClientConfig(**overrides)
    """) == []


def test_cfg_open_constructor_never_flags():
    source = """
    def build():
        return Flexible(anything_goes=1)
    """
    extra = CORE + textwrap.dedent('''
        class Flexible:
            def __init__(self, **kwargs):
                self.kwargs = kwargs
    ''')
    found = analyze_source(textwrap.dedent(source), "pkg/module.py",
                           extra={"core/schema.py": extra})
    assert found == []


# ------------------------------------------------------------- the index

def test_index_dataclass_units_and_rosters():
    tree = ast.parse(CORE)
    index = build_index({"core/schema.py": tree})
    cfg = index.resolve_class("ClientConfig")
    assert cfg is not None
    assert cfg.fields["inter_packet_spacing_s"] == "s"
    assert cfg.fields["playout_deadline_ms"] == "ms"
    assert "Packet" in index.packet_classes
    assert "DeliveryRecord" in index.record_classes


def test_index_conflicting_definitions_are_ambiguous():
    a = ast.parse("def helper(x_s):\n    return x_s\n")
    b = ast.parse("def helper(a, b, c):\n    return a\n")
    index = build_index({"m1.py": a, "m2.py": b})
    assert index.resolve_function("helper") is None


def test_ambiguous_schema_is_never_checked():
    # Two different ClientConfig definitions: the analysis must not
    # guess which one a call site means.
    other = "class ClientConfig:\n    def __init__(self, totally):\n        pass\n"
    found = analyze_source(
        "def build():\n    return ClientConfig(bogus_key=1)\n",
        "pkg/module.py",
        extra={"core/schema.py": CORE, "alt/schema.py": other})
    assert found == []


def test_import_alias_is_not_resolved():
    # `from x import f as schedule` makes the local name a stranger to
    # the indexed `schedule` — no checks may apply.
    found = analyze("""
    from somewhere import other as schedule
    def arm(delay_ms):
        return schedule(timeout_s=delay_ms, bogus=1)
    """)
    assert found == []


# ----------------------------------------------------------------- CLI

def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "tools"), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-m", "reproflow", *args],
        capture_output=True, text=True, cwd=cwd or str(REPO), env=env)


def test_cli_clean_on_repo_source_tree():
    """`python -m reproflow src/` over the real tree: zero non-baselined
    findings (the acceptance criterion for this subsystem)."""
    result = run_cli("src/")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 new finding(s)" in result.stdout


def test_cli_fails_on_seeded_unit_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a_ms, b_s):\n    return a_ms + b_s\n")
    result = run_cli(str(bad), "--no-baseline")
    assert result.returncode == 1
    assert "UNT001" in result.stdout


def test_cli_seeded_violation_resolves_against_src_schemas(tmp_path):
    # The fixture file lives outside src/ but constructs a core config
    # with a typo'd keyword: pass 1 must have indexed src/ anyway.
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.core.config import ClientConfig\n"
        "cfg = ClientConfig(inter_packet_spacing_ms=20.0)\n")
    result = run_cli(str(bad), "--no-baseline")
    assert result.returncode == 1, result.stdout + result.stderr
    assert "CFG001" in result.stdout
    assert "inter_packet_spacing_s" in result.stdout


def test_cli_select_restricts_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a_ms, b_s):\n    return a_ms + b_s\n")
    result = run_cli(str(bad), "--select", "CFG001", "--no-baseline")
    assert result.returncode == 0


def test_cli_write_baseline_then_clean(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a_ms, b_s):\n    return a_ms + b_s\n")
    baseline = tmp_path / "bl.json"
    first = run_cli(str(bad), "--baseline", str(baseline),
                    "--write-baseline")
    assert first.returncode == 0
    second = run_cli(str(bad), "--baseline", str(baseline))
    assert second.returncode == 0, second.stdout


def test_cli_json_format(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a_ms, b_s):\n    return a_ms + b_s\n")
    result = run_cli(str(bad), "--no-baseline", "--format=json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["tool"] == "reproflow"
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "UNT001"


def test_cli_github_format(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a_ms, b_s):\n    return a_ms + b_s\n")
    result = run_cli(str(bad), "--no-baseline", "--format=github")
    assert result.returncode == 1
    assert "::error file=" in result.stdout
    assert "title=UNT001" in result.stdout


def test_cli_list_rules_mentions_every_rule():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in ALL_RULES:
        assert rule in result.stdout


def test_cli_unknown_rule_is_usage_error():
    result = run_cli("src/", "--select", "NOPE999")
    assert result.returncode == 2


def test_cli_missing_path_is_usage_error():
    result = run_cli("no/such/dir")
    assert result.returncode == 2


def test_syntax_error_reported_as_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    result = run_cli(str(bad), "--no-baseline")
    assert result.returncode == 1
    assert "PARSE" in result.stdout


def test_baseline_file_is_valid_and_empty():
    payload = json.loads(
        (REPO / ".reproflow-baseline.json").read_text())
    assert payload["findings"] == []


def test_tests_policy_exempts_lifecycle_families():
    findings = analyze_paths([str(REPO / "tests" / "test_core_packet.py")])
    assert [f for f in findings if f.rule in ("LIF002", "LIF003")] == []
