"""Tests for the extension experiment drivers."""

from repro.experiments.extensions import (
    run_fec_comparison,
    run_nlink_sweep,
    run_uplink,
)
from repro.core.config import StreamProfile

QUICK = StreamProfile(duration_s=10.0)


def test_uplink_driver_structure():
    result = run_uplink(severities=(0.02, 0.06), n_runs=2, seed=1,
                        profile=QUICK)
    assert len(result.severities) == 2
    assert len(result.plain_loss_pct) == 2
    assert "Uplink" in result.render()


def test_uplink_hedging_never_worse():
    result = run_uplink(severities=(0.05,), n_runs=3, seed=2,
                        profile=QUICK)
    assert result.hedged_loss_pct[0] <= result.plain_loss_pct[0] + 0.1


def test_nlink_driver_structure():
    result = run_nlink_sweep(n_links=3, n_runs=3, seed=3, profile=QUICK)
    assert set(result.curve) == {1, 2, 3}
    assert "Diversity" in result.render()


def test_nlink_curve_monotone():
    result = run_nlink_sweep(n_links=3, n_runs=4, seed=4, profile=QUICK)
    assert result.curve[3] <= result.curve[1] + 1e-9


def test_fec_driver_structure():
    result = run_fec_comparison(n_runs=3, seed=5, profile=QUICK)
    assert result.fec_overhead_pct == 20.0
    assert "Coding vs diversity" in result.render()


def test_fec_loses_to_cross_link():
    result = run_fec_comparison(n_runs=4, seed=6, profile=QUICK)
    assert result.cross_loss_pct <= result.fec_loss_pct + 0.5
