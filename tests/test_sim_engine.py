"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import HeapOrderError, RandomRouter, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_call_at_fires_at_time():
    sim = Simulator()
    fired = []
    sim.call_at(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_call_in_relative():
    sim = Simulator(start_time=2.0)
    fired = []
    sim.call_in(0.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(3.0, lambda: order.append("c"))
    sim.call_at(1.0, lambda: order.append("a"))
    sim.call_at(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.call_at(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_callback_args_passed():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda a, b: seen.append((a, b)), 7, "x")
    sim.run()
    assert seen == [(7, "x")]


def test_scheduling_in_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.call_at(9.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.call_at(1.0, fired.append, "nope")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.call_at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_executed == 0


def test_run_until_horizon_stops_clock():
    sim = Simulator()
    fired = []
    sim.call_at(5.0, fired.append, "late")
    final = sim.run(until=2.0)
    assert final == 2.0
    assert fired == []
    # Continuing past the horizon fires the event.
    sim.run(until=10.0)
    assert fired == ["late"]


def test_event_exactly_at_horizon_fires():
    sim = Simulator()
    fired = []
    sim.call_at(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append((sim.now, n))
        if n > 0:
            sim.call_in(1.0, chain, n - 1)

    sim.call_at(0.0, chain, 3)
    sim.run()
    assert fired == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.call_at(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1.0


def test_step_returns_false_on_empty():
    sim = Simulator()
    assert sim.step() is False


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, fired.append, 1)
    sim.call_at(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.now == 1.0


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_reentrant_run_raises():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_at(1.0, nested)
    sim.run()
    assert len(errors) == 1


# ---------------------------------------------------- sanitizer (REPRO_SANITIZE)

def _stochastic_run(seed):
    """A small run whose event sequence depends on the seed."""
    sim = Simulator()
    rng = RandomRouter(seed).stream("engine-test.jitter")

    def tick(n):
        if n > 0:
            sim.call_in(0.001 + float(rng.random()) * 0.01, tick, n - 1)

    sim.call_at(0.0, tick, 50)
    sim.run()
    return sim


def test_digest_is_none_without_sanitizer(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sim = _stochastic_run(seed=0)
    assert sim.sanitizing is False
    assert sim.determinism_digest() is None


def test_same_seed_runs_produce_identical_digests(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    a = _stochastic_run(seed=7)
    b = _stochastic_run(seed=7)
    assert a.sanitizing and b.sanitizing
    assert a.determinism_digest() is not None
    assert a.determinism_digest() == b.determinism_digest()


def test_cross_seed_runs_produce_different_digests(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    a = _stochastic_run(seed=7)
    b = _stochastic_run(seed=8)
    assert a.determinism_digest() != b.determinism_digest()


def test_digest_counts_executed_events(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = _stochastic_run(seed=1)
    digest = sim.determinism_digest()
    assert digest.endswith(f"#{sim.events_executed}")


def test_scheduling_in_past_still_raises_with_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.call_at(9.0, lambda: None)


def test_mutated_event_time_caught_by_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator()
    sim.call_at(5.0, lambda: None)
    rogue = sim.call_at(10.0, lambda: None)
    # Corrupting a scheduled event's time violates heap order; the
    # sanitizer catches it at pop time instead of silently time-travelling.
    rogue.time = 1.0
    with pytest.raises(HeapOrderError):
        sim.run()


def test_mutated_event_time_unnoticed_without_sanitizer(monkeypatch):
    """Documents the hazard the sanitizer exists for: without it the
    corrupted run completes, silently out of order."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sim = Simulator()
    order = []
    sim.call_at(5.0, order.append, "a")
    rogue = sim.call_at(10.0, order.append, "b")
    rogue.time = 1.0
    sim.run()
    assert order == ["a", "b"]   # executed despite t=1.0 < 5.0
