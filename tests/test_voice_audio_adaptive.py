"""Tests for the sample-level audio pipeline and the adaptive playout
buffer."""

import math

import numpy as np
import pytest

from repro.core.packet import LinkTrace
from repro.sim import RandomRouter
from repro.voice.adaptive import AdaptivePlayoutBuffer, AdaptivePlayoutConfig
from repro.voice.audio import (
    ConcealingDecoder,
    score_call_audio,
    segmental_snr_db,
    snr_to_mos,
    synthesize_speech,
)
from repro.voice.g711 import G711Codec, SAMPLES_PER_FRAME
from repro.voice.playout import PlayoutBuffer


def rng(seed=0):
    return RandomRouter(seed).stream("audio")


def trace_of(losses, delays=None, spacing=0.02):
    delivered = [not bool(x) for x in losses]
    if delays is None:
        delays = [0.01 if d else math.nan for d in delivered]
    return LinkTrace("t", np.arange(len(losses)) * spacing,
                     delivered, delays)


# -------------------------------------------------------------- synthesis

def test_synthesize_speech_shape():
    signal = synthesize_speech(2.0, rng())
    assert len(signal) == 16000
    assert signal.dtype == np.int16
    assert np.max(np.abs(signal)) > 5000      # actually carries energy


def test_synthesize_has_pauses_and_speech():
    signal = synthesize_speech(5.0, rng(1)).astype(float)
    frame_energy = signal[:len(signal) // 160 * 160].reshape(
        -1, 160).std(axis=1)
    assert (frame_energy < 100).any()          # pauses
    assert (frame_energy > 1000).any()         # voiced segments


def test_synthesis_deterministic():
    a = synthesize_speech(1.0, rng(2))
    b = synthesize_speech(1.0, rng(2))
    assert np.array_equal(a, b)


# ------------------------------------------------------------- concealment

def frames_from(signal, missing=()):
    n = len(signal) // SAMPLES_PER_FRAME
    frames = []
    for i in range(n):
        if i in missing:
            frames.append(None)
        else:
            chunk = signal[i * SAMPLES_PER_FRAME:(i + 1)
                           * SAMPLES_PER_FRAME]
            frames.append(G711Codec.encode(chunk))
    return frames


def test_decoder_clean_call_high_snr():
    signal = synthesize_speech(2.0, rng(3))
    decoded = ConcealingDecoder().decode_call(frames_from(signal))
    assert segmental_snr_db(signal, decoded) > 20.0


def test_decoder_conceals_isolated_gap_smoothly():
    signal = synthesize_speech(2.0, rng(4))
    clean = ConcealingDecoder().decode_call(frames_from(signal))
    degraded = ConcealingDecoder().decode_call(
        frames_from(signal, missing={30}))
    # The concealed frame differs but stays energy-bounded.
    sl = slice(30 * SAMPLES_PER_FRAME, 31 * SAMPLES_PER_FRAME)
    assert np.max(np.abs(degraded[sl].astype(float))) \
        <= np.max(np.abs(clean.astype(float))) * 1.5


def test_burst_extrapolation_decays():
    signal = synthesize_speech(3.0, rng(5))
    missing = set(range(50, 60))
    degraded = ConcealingDecoder().decode_call(
        frames_from(signal, missing=missing))
    energies = []
    for i in sorted(missing):
        sl = slice(i * SAMPLES_PER_FRAME, (i + 1) * SAMPLES_PER_FRAME)
        energies.append(float(np.abs(degraded[sl].astype(float)).mean()))
    # Energy decays monotonically within the concealed burst.
    assert all(a >= b - 1e-6 for a, b in zip(energies, energies[1:]))
    assert energies[-1] < max(energies[0], 1.0) + 1e-6


def test_burst_hurts_snr_more_than_isolated():
    signal = synthesize_speech(4.0, rng(6))
    isolated = ConcealingDecoder().decode_call(
        frames_from(signal, missing={40, 80, 120}))
    bursty = ConcealingDecoder().decode_call(
        frames_from(signal, missing={40, 41, 42}))
    # Same loss count, but the burst degrades the signal at least as much
    # (extrapolation vs interpolation).
    iso_snr = segmental_snr_db(signal, isolated)
    burst_snr = segmental_snr_db(signal, bursty)
    assert burst_snr <= iso_snr + 1.0


def test_snr_to_mos_monotone_bounded():
    values = [snr_to_mos(s) for s in (-10, 0, 10, 20, 35)]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert 1.0 <= values[0] and values[-1] <= 4.5


def test_score_call_audio_clean_vs_lossy():
    clean = trace_of([0] * 250)
    lossy_pattern = [0] * 250
    for i in range(50, 250, 10):
        for j in range(3):
            if i + j < 250:
                lossy_pattern[i + j] = 1
    lossy = trace_of(lossy_pattern)
    mos_clean = score_call_audio(clean, rng(7))
    mos_lossy = score_call_audio(lossy, rng(7))
    assert mos_clean > mos_lossy
    assert mos_clean > 3.5


# --------------------------------------------------------- adaptive playout

def jittery_trace(n=2000, base=0.02, seed=8):
    r = RandomRouter(seed).stream("jitter")
    delays = base + r.lognormal(mean=np.log(0.004), sigma=1.0, size=n)
    delivered = np.ones(n, dtype=bool)
    return LinkTrace("j", np.arange(n) * 0.02, delivered, delays)


def test_adaptive_tracks_base_delay():
    trace = jittery_trace()
    buffer = AdaptivePlayoutBuffer()
    result = buffer.replay(trace)
    assert result.effective_loss_rate < 0.05
    assert 0.02 < buffer.mean_playout_delay_s < 0.2


def test_adaptive_beats_tight_fixed_buffer():
    """Against a delay process hovering near a fixed buffer's deadline,
    adaptation converts late losses into a bit of extra delay."""
    trace = jittery_trace(base=0.09, seed=9)
    fixed = PlayoutBuffer(0.100).replay(trace)
    adaptive = AdaptivePlayoutBuffer(AdaptivePlayoutConfig(
        max_delay_s=0.250)).replay(trace)
    assert adaptive.effective_loss_rate < fixed.effective_loss_rate


def test_adaptive_respects_clamps():
    config = AdaptivePlayoutConfig(min_delay_s=0.05, max_delay_s=0.08)
    buffer = AdaptivePlayoutBuffer(config)
    buffer.replay(jittery_trace(seed=10))
    assert 0.05 <= buffer.mean_playout_delay_s <= 0.08


def test_adaptive_validates_alpha():
    with pytest.raises(ValueError):
        AdaptivePlayoutBuffer(AdaptivePlayoutConfig(alpha=1.5))


def test_adaptive_counts_network_losses():
    trace = trace_of([0, 1, 0, 1, 0] * 100)
    result = AdaptivePlayoutBuffer().replay(trace)
    assert result.network_losses == 200
