"""Tests for the experiment drivers (small run counts — mechanism checks,
not statistics; the benchmarks assert the paper-shape at scale)."""

import numpy as np
import pytest

from repro.experiments.section3 import run_figure1, run_table1, run_table2
from repro.experiments.section4 import (
    run_figure2a,
    run_figure3,
    run_figure4,
    run_figure5,
    wild_dataset,
)
from repro.experiments.section6 import (
    run_figure10,
    run_section64_scalability,
    run_table3,
)


def test_wild_dataset_cached():
    a = wild_dataset(3, seed=11)
    b = wild_dataset(3, seed=11)
    assert a is b            # lru_cache hit


def test_wild_dataset_respects_duration_override():
    runs = wild_dataset(2, seed=12, deltas=(), duration_s=10.0)
    assert runs[0].n_packets == 500


def test_figure2a_structure():
    result = run_figure2a(n_runs=4, seed=13)
    assert set(result.series) == {"cross-link", "stronger", "better"}
    assert all(len(v) == 4 for v in result.series.values())
    assert "Figure 2a" in result.render()


def test_figure3_finds_weak_pair():
    result = run_figure3(seed=1, max_tries=6)
    assert result.loss_a_pct >= 0.0
    assert result.loss_combined_pct <= max(result.loss_a_pct,
                                           result.loss_b_pct)
    assert "Figure 3" in result.render()


def test_figure4_lags():
    result = run_figure4(n_runs=3, seed=14, max_lag=5)
    assert result.lags == [1, 2, 3, 4, 5]
    assert len(result.autocorrelation) == 5


def test_figure5_histograms():
    result = run_figure5(n_runs=3, seed=15)
    assert set(result.histograms) == {
        "stronger", "temporal (100ms)", "cross-link"}
    for hist in result.histograms.values():
        assert ">10" in hist


def test_table1_driver():
    result = run_table1(n_calls=20_000, seed=1)
    assert len(result.rows) == 4
    assert 0.0 < result.overall_pcr < 1.0
    assert "Table 1" in result.render()


def test_table2_driver():
    result = run_table2(seed=1, scale=0.02)
    assert "Table 2" in result.render()
    rows = result.dataset.table2()
    assert rows[-1][0] == "Total"


def test_figure1_driver():
    result = run_figure1(seed=1)
    assert len(result.locations) == 16
    assert "Figure 1" in result.render()


def test_table3_components_sum():
    result = run_table3(n_events=10)
    assert result.ap_total_ms == pytest.approx(
        result.ap_switching_ms + result.ap_network_ms, abs=1e-6)
    assert result.mbox_total_ms == pytest.approx(
        result.mbox_switching_ms + result.mbox_network_ms
        + result.mbox_queuing_ms, abs=1e-6)
    assert result.mbox_total_ms > result.ap_total_ms


def test_scalability_monotone():
    result = run_section64_scalability(loads=(0, 1000), n_events=5)
    assert result.total_delay_ms[1] > result.total_delay_ms[0]
    assert "6.4" in result.render()


def test_figure10_paired_runs():
    result = run_figure10(n_runs=2, seed0=500)
    assert len(result.with_diversifi_mbps) == 2
    assert len(result.differences_kbps) == 2
    assert result.mean_without > 0.5     # TCP actually moved data
