"""Tests for the per-codec E-model constants (G.113)."""

import warnings

import pytest

from repro.experiments.section4 import run_figure6
from repro.voice.quality import (
    CODEC_IMPAIRMENTS,
    UnknownCodecError,
    codec_impairment,
    emodel_r_factor,
)


def test_known_codecs_present():
    for codec in ("g711", "G722", "G723", "G729"):
        assert codec_impairment(codec).bpl > 0


def test_unknown_codec_raises():
    """Regression: an unknown codec used to silently score with G.711's
    constants — the most loss-robust entry in the table."""
    with pytest.raises(UnknownCodecError, match="opus-super"):
        codec_impairment("opus-super")


def test_unknown_codec_non_strict_warns_and_falls_back():
    with pytest.warns(UserWarning, match="opus-super"):
        constants = codec_impairment("opus-super", strict=False)
    assert constants is CODEC_IMPAIRMENTS["g711"]


def test_known_codec_never_warns():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert codec_impairment("G729", strict=False).ie == 11.0


def test_low_bitrate_codecs_score_worse_at_zero_loss():
    """Ie > 0 codecs start below G.711 even on a perfect network."""
    g711 = emodel_r_factor(0.0, 0.05, codec="g711")
    g729 = emodel_r_factor(0.0, 0.05, codec="G729")
    g723 = emodel_r_factor(0.0, 0.05, codec="G723")
    assert g729 < g711
    assert g723 < g711


def test_g711_most_loss_robust():
    """G.711's PLC (highest Bpl) degrades most gracefully with loss."""
    def drop(codec):
        return (emodel_r_factor(0.0, 0.05, codec=codec)
                - emodel_r_factor(0.05, 0.05, codec=codec))
    assert drop("g711") < drop("G722")


def test_rtp_profiles_map_to_impairments():
    """Every static RTP profile's codec has G.113 constants."""
    from repro.traffic.rtp import RTP_PROFILES
    for profile in RTP_PROFILES.values():
        constants = codec_impairment(profile.name)
        assert constants.bpl > 0


def test_figure6_ci_present_when_poor_calls_exist():
    result = run_figure6(n_runs_per_scenario=4, seed=3)
    rendered = result.render()
    assert "overall improvement" in rendered
    # raw indicators captured for the bootstrap
    assert set(result.raw_poors) == {"stronger", "cross-link"}
    interval = result.improvement_interval()
    if interval is not None:
        assert interval.low <= result.improvement_factor() * 1.5
