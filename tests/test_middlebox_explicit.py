"""Tests for the middlebox's explicit per-sequence selection mode."""

import numpy as np
import pytest

from repro.core.config import MiddleboxConfig, StreamProfile
from repro.core.controller import run_session
from repro.core.packet import Packet
from repro.net.middlebox import Middlebox
from repro.sim import Simulator

from tests.test_client_controller import (
    clean_gilbert,
    link_factory,
    outage_gilbert,
)

SHORT = StreamProfile(duration_s=10.0)


def packet(seq, flow="rt0"):
    return Packet(seq=seq, send_time=0.0, flow_id=flow)


def test_retrieve_forwards_only_requested():
    sim = Simulator()
    mbox = Middlebox(sim, MiddleboxConfig(buffer_len=10))
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(5):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    sim.call_at(1.0, mbox.retrieve, "rt0", [1, 3])
    sim.run()
    assert sorted(p.seq for p in got) == [1, 3]


def test_retrieve_returns_found_count():
    sim = Simulator()
    mbox = Middlebox(sim, MiddleboxConfig(buffer_len=10))
    mbox.register_flow("rt0", lambda p: None)
    for i in range(3):
        mbox.replica_arrival(packet(i))
    assert mbox.retrieve("rt0", [0, 2, 99]) == 2
    assert mbox.stats.retrieve_messages == 1


def test_retrieve_keeps_unrequested_buffered():
    sim = Simulator()
    mbox = Middlebox(sim, MiddleboxConfig(buffer_len=10))
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(4):
        mbox.replica_arrival(packet(i))
    mbox.retrieve("rt0", [1])
    mbox.retrieve("rt0", [2])       # still there
    sim.run()
    assert sorted(p.seq for p in got) == [1, 2]


def test_retrieve_unknown_flow_raises():
    sim = Simulator()
    mbox = Middlebox(sim, MiddleboxConfig())
    with pytest.raises(KeyError):
        mbox.retrieve("ghost", [0])


def test_explicit_mode_session_recovers():
    result = run_session(
        link_factory(outage_gilbert(), clean_gilbert()),
        mode="diversifi-mbox", profile=SHORT, seed=31,
        middlebox_explicit=True)
    assert result.client_stats.recovered > 0
    assert result.middlebox.stats.retrieve_messages > 0
    assert result.middlebox.stats.start_messages == 0
    assert result.effective_trace().loss_rate < 0.02


def test_explicit_mode_wastes_less_than_start_stop():
    """The paper: explicit selection 'could, in principle, avoid
    duplicating any packets' — measurably less waste than start/stop."""
    waste = {}
    for explicit in (False, True):
        rates = []
        for seed in range(6):
            result = run_session(
                link_factory(outage_gilbert(), clean_gilbert()),
                mode="diversifi-mbox", profile=SHORT, seed=seed,
                middlebox_explicit=explicit)
            rates.append(result.wasteful_duplication_rate())
        waste[explicit] = float(np.mean(rates))
    assert waste[True] <= waste[False] + 1e-9
