"""Tests for PSM signalling, virtual adapters and link switching."""

import pytest

from repro.core.config import APConfig
from repro.sim import RandomRouter, Simulator
from repro.wifi.ap import AccessPoint
from repro.wifi.association import WifiManager
from repro.wifi.psm import PowerSaveClient, PsmConfig
from repro.wifi.scan import BssEntry, ScanResult, distinct_channel_count

from tests.test_wifi_ap import PerfectLink


def make_ap(sim, name="ap"):
    return AccessPoint(sim, name, PerfectLink(), APConfig())


def rng(seed=0):
    return RandomRouter(seed).stream("psm")


# --------------------------------------------------------------------- PSM

def test_psm_sleep_sets_ap_state():
    sim = Simulator()
    ap = make_ap(sim)
    done = []
    psm = PowerSaveClient(sim, ap, rng(),
                          PsmConfig(frame_loss_prob=0.0))
    sim.call_at(0.0, psm.send_sleep, lambda: done.append(sim.now))
    sim.run()
    assert not ap.client_awake
    assert done and done[0] == pytest.approx(0.0003)


def test_psm_wake_sets_ap_state():
    sim = Simulator()
    ap = make_ap(sim)
    ap.client_sleep()
    psm = PowerSaveClient(sim, ap, rng(), PsmConfig(frame_loss_prob=0.0))
    sim.call_at(0.0, psm.send_wake, lambda: None)
    sim.run()
    assert ap.client_awake


def test_psm_retries_on_frame_loss():
    sim = Simulator()
    ap = make_ap(sim)
    # Force heavy loss: retries must accumulate.
    psm = PowerSaveClient(sim, ap, rng(seed=3),
                          PsmConfig(frame_loss_prob=0.9, max_retries=5))
    sim.call_at(0.0, psm.send_sleep, lambda: None)
    sim.run()
    assert psm.retries > 0
    assert psm.exchanges == psm.retries + 1 or psm.exchanges == 6


# ----------------------------------------------------------- WifiManager

def build_manager(sim, seed=0):
    manager = WifiManager(sim, rng(seed),
                          PsmConfig(frame_loss_prob=0.0))
    ap_a = make_ap(sim, "apA")
    ap_b = make_ap(sim, "apB")
    manager.create_adapter("primary")
    manager.create_adapter("secondary")
    manager.associate("primary", ap_a, channel=1)
    manager.associate("secondary", ap_b, channel=11)
    return manager, ap_a, ap_b


def test_adapters_have_unique_macs():
    sim = Simulator()
    manager = WifiManager(sim, rng())
    a = manager.create_adapter("x")
    b = manager.create_adapter("y")
    assert a.mac_address != b.mac_address


def test_duplicate_adapter_name_rejected():
    sim = Simulator()
    manager = WifiManager(sim, rng())
    manager.create_adapter("x")
    with pytest.raises(ValueError):
        manager.create_adapter("x")


def test_new_associations_start_asleep():
    sim = Simulator()
    manager, ap_a, ap_b = build_manager(sim)
    assert not ap_a.client_awake
    assert not ap_b.client_awake


def test_activate_wakes_primary():
    sim = Simulator()
    manager, ap_a, ap_b = build_manager(sim)
    manager.activate("primary")
    assert ap_a.client_awake
    assert manager.active_adapter == "primary"


def test_switch_sequence_and_latency():
    sim = Simulator()
    manager, ap_a, ap_b = build_manager(sim)
    manager.activate("primary")
    done_at = []
    sim.call_at(1.0, manager.switch_to, "secondary",
                lambda: done_at.append(sim.now))
    sim.run()
    assert not ap_a.client_awake
    assert ap_b.client_awake
    assert manager.active_adapter == "secondary"
    # sleep exchange (0.3 ms) + retune (2.3 ms) + wake exchange (0.3 ms)
    assert done_at[0] == pytest.approx(1.0029, abs=1e-6)
    assert manager.off_channel_time_s == pytest.approx(0.0029, abs=1e-6)


def test_switch_to_active_adapter_is_noop():
    sim = Simulator()
    manager, *_ = build_manager(sim)
    manager.activate("primary")
    assert manager.switch_to("primary") is False
    assert manager.switch_count == 0


def test_concurrent_switch_rejected():
    sim = Simulator()
    manager, *_ = build_manager(sim)
    manager.activate("primary")
    results = []
    sim.call_at(1.0, lambda: results.append(
        manager.switch_to("secondary")))
    sim.call_at(1.0005, lambda: results.append(
        manager.switch_to("primary")))   # mid-switch
    sim.run()
    assert results == [True, False]


def test_switch_to_unassociated_raises():
    sim = Simulator()
    manager = WifiManager(sim, rng())
    manager.create_adapter("primary")
    with pytest.raises(ValueError):
        manager.switch_to("primary")


def test_switch_counts_accumulate():
    sim = Simulator()
    manager, *_ = build_manager(sim)
    manager.activate("primary")
    sim.call_at(1.0, manager.switch_to, "secondary", None)
    sim.call_at(2.0, manager.switch_to, "primary", None)
    sim.run()
    assert manager.switch_count == 2
    assert manager.off_channel_time_s == pytest.approx(0.0058, abs=1e-5)


# -------------------------------------------------------------------- scan

def entries():
    return [
        BssEntry("aa:1", "corp", 1, "2.4GHz", -50.0),
        BssEntry("aa:2", "corp", 1, "2.4GHz", -61.0),   # virtual AP, same ch
        BssEntry("aa:3", "corp", 11, "2.4GHz", -70.0),
        BssEntry("bb:1", "other", 6, "2.4GHz", -40.0, connectable=False),
    ]


def test_scan_counts_connectable_bssids():
    scan = ScanResult("office", entries())
    assert scan.n_bssids == 3


def test_scan_counts_distinct_channels():
    scan = ScanResult("office", entries())
    assert scan.n_channels == 2   # channels 1 and 11; ch 6 not connectable


def test_scan_strongest_ordering():
    scan = ScanResult("office", entries())
    top = scan.strongest(2)
    assert [e.bssid for e in top] == ["aa:1", "aa:2"]


def test_distinct_channel_count_helper():
    assert distinct_channel_count(entries()) == 3
