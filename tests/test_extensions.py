"""Tests for the future-work extensions: FEC baseline, cellular hedging,
uplink DiversiFi."""

import math

import numpy as np
import pytest

from repro.channel.cellular import CellularConfig, CellularLink
from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import StreamProfile
from repro.core.fec import FecConfig, apply_fec, render_fec_run
from repro.core.packet import LinkTrace, merge_traces
from repro.core.uplink import UplinkDiversiFiClient, run_uplink_session
from repro.sim import Simulator
from repro.sim.random import RandomRouter

SHORT = StreamProfile(duration_s=10.0)


def trace_of(losses, name="t", delay=0.005, spacing=0.02):
    delivered = [not bool(x) for x in losses]
    delays = [delay if d else math.nan for d in delivered]
    return LinkTrace(name, np.arange(len(losses)) * spacing,
                     delivered, delays)


def parity_of(delivered_flags, spacing=0.1):
    delays = [0.005 if d else math.nan for d in delivered_flags]
    return LinkTrace("parity", np.arange(len(delivered_flags)) * spacing,
                     delivered_flags, delays)


# --------------------------------------------------------------------- FEC

def test_fec_recovers_isolated_loss():
    data = trace_of([0, 1, 0, 0, 0])          # one loss in the block
    parity = parity_of([True])
    decoded = apply_fec(data, parity, FecConfig(block_size=5))
    assert decoded.delivered.all()


def test_fec_cannot_recover_burst():
    data = trace_of([0, 1, 1, 0, 0])          # two losses in one block
    parity = parity_of([True])
    decoded = apply_fec(data, parity, FecConfig(block_size=5))
    assert not decoded.delivered[1]
    assert not decoded.delivered[2]


def test_fec_needs_parity():
    data = trace_of([0, 1, 0, 0, 0])
    parity = parity_of([False])               # parity lost too
    decoded = apply_fec(data, parity, FecConfig(block_size=5))
    assert not decoded.delivered[1]


def test_fec_decode_deadline_enforced():
    data = trace_of([1, 0, 0, 0, 0])
    # Block completes only at the last packet (t=80 ms) + parity; with a
    # 50 ms deadline the first packet cannot be recovered in time.
    parity = parity_of([True], spacing=0.1)
    decoded = apply_fec(data, parity, FecConfig(block_size=5),
                        decode_deadline_s=0.050)
    assert not decoded.delivered[0]


def test_fec_overhead_constant():
    assert FecConfig(block_size=5).overhead_fraction == pytest.approx(0.2)
    with pytest.raises(ValueError):
        FecConfig(block_size=0)


def test_fec_render_and_decode_on_real_link():
    config = LinkConfig(
        name="w", ap_position=Position(0, 0),
        gilbert=GilbertParams(mean_good_s=2.0, mean_bad_s=0.3,
                              loss_good=0.0, loss_bad=0.98))
    link = WifiLink(config, RandomRouter(3),
                    mobility=StaticPosition(Position(8, 0)))
    data, parity = render_fec_run(link, SHORT)
    decoded = apply_fec(data, parity)
    assert decoded.loss_rate <= data.loss_rate


def test_fec_loses_to_cross_link_on_bursty_channel():
    """The headline contrast: burst losses defeat single-link coding but
    not cross-link replication."""
    def wifi(seed, name):
        config = LinkConfig(
            name=name, ap_position=Position(0, 0),
            gilbert=GilbertParams(mean_good_s=1.5, mean_bad_s=0.4,
                                  loss_good=0.0, loss_bad=0.99))
        return WifiLink(config, RandomRouter(seed),
                        mobility=StaticPosition(Position(10, 0)))

    data, parity = render_fec_run(wifi(10, "A"), SHORT)
    fec_trace = apply_fec(data, parity)

    link_a, link_b = wifi(10, "A"), wifi(11, "B")
    merged = merge_traces([link_a.generate_trace(SHORT),
                           link_b.generate_trace(SHORT)])
    assert merged.loss_rate < fec_trace.loss_rate


# ---------------------------------------------------------------- cellular

def test_cellular_low_steady_loss():
    link = CellularLink(CellularConfig(outage=GilbertParams(
        mean_good_s=1e9, mean_bad_s=0.01, loss_good=0.0, loss_bad=0.0)),
        RandomRouter(1))
    trace = link.generate_trace(SHORT)
    assert trace.loss_rate < 0.01


def test_cellular_delay_higher_than_wifi():
    link = CellularLink(CellularConfig(), RandomRouter(2))
    trace = link.generate_trace(SHORT)
    delays = trace.delays[trace.delivered]
    assert np.median(delays) > 0.030


def test_cellular_outages_are_long():
    config = CellularConfig(outage=GilbertParams(
        mean_good_s=5.0, mean_bad_s=2.0, loss_good=0.0, loss_bad=1.0))
    link = CellularLink(config, RandomRouter(3))
    trace = link.generate_trace(StreamProfile(duration_s=60.0))
    from repro.analysis.bursts import burst_lengths
    bursts = burst_lengths(trace)
    assert bursts and max(bursts) > 20      # multi-second outage


def test_cross_technology_hedging_beats_either():
    wifi_config = LinkConfig(
        name="wifi", ap_position=Position(0, 0),
        gilbert=GilbertParams(mean_good_s=2.0, mean_bad_s=0.5,
                              loss_good=0.0, loss_bad=0.98))
    wifi = WifiLink(wifi_config, RandomRouter(4),
                    mobility=StaticPosition(Position(12, 0)))
    lte = CellularLink(CellularConfig(outage=GilbertParams(
        mean_good_s=20.0, mean_bad_s=1.0, loss_good=0.0, loss_bad=1.0)),
        RandomRouter(5))
    wifi_trace = wifi.generate_trace(SHORT)
    lte_trace = lte.generate_trace(SHORT)
    merged = merge_traces([wifi_trace, lte_trace])
    assert merged.loss_rate <= wifi_trace.loss_rate
    assert merged.loss_rate <= lte_trace.loss_rate


def test_cellular_cost_accounting():
    link = CellularLink(CellularConfig(cost_per_mb=2.0), RandomRouter(6))
    link.generate_trace(SHORT)
    expected_mb = SHORT.n_packets * 160 / 1e6
    assert link.duplicate_cost() == pytest.approx(expected_mb * 2.0)


# ------------------------------------------------------------------ uplink

def uplink_factory(primary_gilbert, secondary_gilbert=None):
    def build(router):
        client_pos = StaticPosition(Position(0, 0))
        primary = WifiLink(
            LinkConfig(name="up-p", ap_position=Position(6, 0),
                       gilbert=primary_gilbert, base_delay_s=0.0),
            router, mobility=client_pos)
        secondary = WifiLink(
            LinkConfig(name="up-s", ap_position=Position(10, 0),
                       gilbert=secondary_gilbert or GilbertParams(
                           mean_good_s=1e9, mean_bad_s=0.01,
                           loss_good=0.0, loss_bad=0.0),
                       base_delay_s=0.0),
            router, mobility=client_pos)
        return primary, secondary
    return build


def outage():
    return GilbertParams(mean_good_s=2.0, mean_bad_s=0.4,
                         loss_good=0.0, loss_bad=0.999)


def test_uplink_clean_channel_lossless():
    client = run_uplink_session(
        uplink_factory(GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                                     loss_good=0.0, loss_bad=0.0)),
        SHORT, seed=1)
    assert client.trace.loss_rate == 0.0
    assert client.stats.switches == 0


def test_uplink_recovers_failures():
    baseline = run_uplink_session(uplink_factory(outage()), SHORT,
                                  seed=2, enabled=False)
    hedged = run_uplink_session(uplink_factory(outage()), SHORT,
                                seed=2, enabled=True)
    assert hedged.stats.failures_primary > 0
    assert hedged.trace.loss_rate < baseline.trace.loss_rate
    assert hedged.stats.retransmissions > 0


def test_uplink_retransmits_only_on_failure():
    """No proactive duplication: secondary transmissions are bounded by
    failures plus the packets that came due while off-channel."""
    client = run_uplink_session(uplink_factory(outage()), SHORT, seed=3)
    budget = (client.stats.failures_primary * 3
              + client.stats.switches * 5 + 10)
    assert client.stats.sent_secondary <= budget


def test_uplink_respects_deadline():
    client = run_uplink_session(uplink_factory(outage()), SHORT, seed=4)
    eff = client.trace.effective_trace(deadline=0.100)
    delays = eff.delays[eff.delivered]
    if delays.size:
        assert np.nanmax(delays) <= 0.100 + 1e-9


def test_uplink_deterministic():
    a = run_uplink_session(uplink_factory(outage()), SHORT, seed=5)
    b = run_uplink_session(uplink_factory(outage()), SHORT, seed=5)
    assert a.trace.arrivals == b.trace.arrivals
