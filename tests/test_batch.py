"""Unit tests for the vectorized batch backend (repro.batch).

Covers the properties equivalence sampling alone cannot: bit-exact
render determinism, block-slice invariance (any subset of the
population renders identically to the same sessions inside a larger
block), and exact per-session parity of the vectorized strategy /
summary reductions against their event-path counterparts on shared
traces.  Statistical batch-vs-event equivalence lives in
``tests/test_batch_equivalence.py``.
"""

import numpy as np
import pytest

from repro.batch.population import PopulationSpec
from repro.batch.render import TraceBlock, ar1_complex, render_block
from repro.batch.strategies import strategy_suite
from repro.batch.summary import (
    correlation_rows,
    mos_rows,
    session_payloads,
    worst_window_rows,
)
from repro.channel.fast import _ar1_complex
from repro.core import strategies as event_strategies
from repro.core.config import StreamProfile
from repro.experiments.section4 import wild_run_metrics
from repro.voice.pcr import POOR_MOS_THRESHOLD, score_call

SPEC = PopulationSpec(n_sessions=6, root_seed=0, deltas=(0.0, 0.1),
                      duration_s=10.0)


@pytest.fixture(scope="module")
def block():
    return render_block(SPEC)


# ------------------------------------------------------------- rendering

def test_ar1_matches_fast_renderer_exactly():
    """The batch AR(1) (convolution form) consumes the same draws and
    produces the same sequence as the fast renderer's lfilter/loop."""
    for n, rho in ((1, 0.9), (500, 0.0), (2_000, 0.74), (3_000, 0.999)):
        ours = ar1_complex(n, rho, np.random.default_rng(11))
        reference = _ar1_complex(n, rho, np.random.default_rng(11))
        np.testing.assert_allclose(ours, reference, rtol=1e-9, atol=1e-12)


def test_render_block_deterministic(block):
    again = render_block(SPEC)
    assert again.scenarios == block.scenarios
    assert np.array_equal(again.delivered, block.delivered)
    assert np.allclose(again.delays, block.delays, equal_nan=True)
    assert np.array_equal(again.offset_delivered, block.offset_delivered)
    assert np.array_equal(again.rssi_dbm, block.rssi_dbm)


def test_render_block_slice_invariance(block):
    """Sessions are derived from (root_seed, index) alone, so rendering
    a subset block reproduces the exact same rows — the property block
    sharding and cache addressing rely on."""
    subset = render_block(SPEC, indices=[1, 4])
    for row, index in enumerate(subset.indices):
        pos = block.indices.index(index)
        assert subset.scenarios[row] == block.scenarios[pos]
        assert np.array_equal(subset.delivered[row],
                              block.delivered[pos])
        assert np.allclose(subset.delays[row], block.delays[pos],
                           equal_nan=True)
        assert np.array_equal(subset.offset_delivered[row],
                              block.offset_delivered[pos])


def test_block_shapes(block):
    n = SPEC.profile.n_packets
    assert block.delivered.shape == (6, 2, n)
    assert block.delays.shape == (6, 2, n)
    assert block.offset_delivered.shape == (6, 2, n)
    assert block.rssi_dbm.shape == (6, 2)
    assert np.isnan(block.delays[~block.delivered]).all()
    assert not np.isnan(block.delays[block.delivered]).any()


def test_block_scenarios_from_wild_mix(block):
    known = {"benign", "weak_link", "mobility", "congestion", "microwave"}
    assert set(block.scenarios) <= known


# ----------------------------------------------- strategy/summary parity

def test_strategy_suite_matches_event_strategies(block):
    """On identical traces every vectorized strategy must reproduce the
    scalar strategy's outcome exactly, session by session."""
    suite = dict((name, (delivered, delays))
                 for name, delivered, delays in strategy_suite(block))
    event_suite = {
        "cross-link": event_strategies.cross_link,
        "stronger": event_strategies.stronger,
        "better": event_strategies.better,
        "divert": lambda r: event_strategies.divert(r, window_h=1,
                                                    threshold_t=1),
        "baseline": event_strategies.baseline,
        "temporal:0.0": lambda r: event_strategies.temporal(r, 0.0),
        "temporal:0.1": lambda r: event_strategies.temporal(r, 0.1),
    }
    assert set(suite) == set(event_suite)
    for pos in range(block.n_sessions):
        run = block.paired_run(pos)
        for name, fn in event_suite.items():
            trace = fn(run)
            delivered, delays = suite[name]
            assert np.array_equal(delivered[pos], trace.delivered), \
                f"{name} delivered mismatch at session {pos}"
            np.testing.assert_allclose(
                delays[pos], trace.delays, equal_nan=True,
                err_msg=f"{name} delays mismatch at session {pos}")


def test_worst_window_rows_matches_scalar(block):
    from repro.analysis.windows import worst_window_loss
    spacing = block.spacing_s
    losses = (~block.delivered[:, 0]).astype(float)
    rows = worst_window_rows(losses, spacing)
    for pos in range(block.n_sessions):
        scalar = worst_window_loss(losses[pos],
                                   inter_packet_spacing_s=spacing)
        assert rows[pos] == pytest.approx(scalar, abs=1e-12)


def test_mos_rows_matches_score_call(block):
    for pos in range(block.n_sessions):
        run = block.paired_run(pos)
        trace = event_strategies.cross_link(run)
        scalar = score_call(trace).mos
        merged_del, merged_delay = (
            np.asarray([trace.delivered]), np.asarray([trace.delays]))
        vec = mos_rows(merged_del, merged_delay, block.spacing_s)[0]
        assert vec == pytest.approx(scalar, abs=1e-9)


def test_correlation_rows_matches_scalar(block):
    from repro.analysis.correlation import loss_autocorrelation
    x = (~block.delivered[:, 0]).astype(float)
    rows = correlation_rows(x, x, max_lag=8)
    for pos in range(block.n_sessions):
        run = block.paired_run(pos)
        scalar = loss_autocorrelation(run.trace_a, max_lag=8)
        np.testing.assert_allclose(rows[pos], scalar, atol=1e-12)


def test_correlation_rows_degenerate_zero():
    flat = np.zeros((2, 50))
    assert not correlation_rows(flat, flat, max_lag=5).any()
    short = np.ones((1, 2))
    assert not correlation_rows(short, short, max_lag=5).any()


def test_session_payloads_shape_matches_event_payload(block):
    payloads = session_payloads(block)
    assert len(payloads) == block.n_sessions
    reference = wild_run_metrics(
        0, root_seed=SPEC.root_seed, deltas=SPEC.deltas,
        duration_s=10.0)
    assert set(payloads[0]) == set(reference)
    assert set(payloads[0]["worst_window"]) \
        == set(reference["worst_window"])
    assert set(payloads[0]["poor"]) == set(reference["poor"])
    assert set(payloads[0]["bursts"]) == set(reference["bursts"])
    assert len(payloads[0]["autocorr"]) == len(reference["autocorr"])
    for name, contribution in payloads[0]["bursts"].items():
        assert set(contribution) == {"buckets", "lost", "bursty"}
        assert set(contribution["buckets"]) \
            == set(reference["bursts"][name]["buckets"])


def test_summary_poor_flag_uses_mos_threshold(block):
    payloads = session_payloads(block)
    suite = dict((name, (delivered, delays))
                 for name, delivered, delays in strategy_suite(block))
    delivered, delays = suite["stronger"]
    mos = mos_rows(delivered, delays, block.spacing_s)
    for pos, payload in enumerate(payloads):
        assert payload["poor"]["stronger"] \
            == bool(mos[pos] < POOR_MOS_THRESHOLD)


# ----------------------------------------------------- synthetic blocks

def synthetic_block(delivered_a, delays_a, delivered_b, delays_b):
    delivered_a = np.asarray(delivered_a, dtype=bool)
    n = delivered_a.shape[-1]
    profile = StreamProfile(duration_s=n * 0.02)
    delivered = np.stack([delivered_a, np.asarray(delivered_b,
                                                  dtype=bool)], axis=1)
    delays = np.stack([np.asarray(delays_a, dtype=float),
                       np.asarray(delays_b, dtype=float)], axis=1)
    b = delivered.shape[0]
    return TraceBlock(
        profile=profile, indices=tuple(range(b)),
        scenarios=("benign",) * b, deltas=(),
        send_times=np.arange(n) * 0.02,
        delivered=delivered, delays=delays,
        rssi_dbm=np.asarray([[-50.0, -60.0]] * b),
        offset_delivered=np.zeros((b, 0, n), dtype=bool),
        offset_delays=np.zeros((b, 0, n)))


def test_divert_switches_after_loss():
    """H=1, T=1: one loss on the current link flips to the other."""
    block = synthetic_block(
        [[True, False, True, True]], [[0.01, np.nan, 0.01, 0.01]],
        [[True, True, False, True]], [[0.02, 0.02, np.nan, 0.02]])
    suite = dict((name, (delivered, delays))
                 for name, delivered, delays in strategy_suite(block))
    delivered, delays = suite["divert"]
    # packet 0 on A (ok), 1 on A (lost -> switch), 2 on B (lost ->
    # switch back), 3 on A (ok)
    assert delivered[0].tolist() == [True, False, False, True]
    run = block.paired_run(0)
    trace = event_strategies.divert(run, window_h=1, threshold_t=1)
    assert np.array_equal(delivered[0], trace.delivered)


def test_worst_window_rows_trailing_partial():
    losses = np.asarray([[0.0] * 10 + [1.0]])
    # window of 5 packets (0.1s window / 0.02 spacing): the trailing
    # partial window is a single fully-lost packet
    assert worst_window_rows(losses, 0.02, window_s=0.1)[0] == 1.0
    assert worst_window_rows(losses[:, :0], 0.02)[0] == 0.0
