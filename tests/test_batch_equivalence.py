"""Batch-vs-event statistical equivalence (the REPRO_SANITIZE harness).

The event engine is the reference.  These tests render populations with
the batch backend and re-run sessions through
:func:`repro.scenarios.generate_wild_run`, checking the tolerances of
``tests/test_channel_fast.py`` — and exercise the sanitizer wiring both
ways: a healthy block passes ``check_block_equivalence``, a corrupted
one raises :class:`~repro.batch.sanity.BatchEquivalenceError`.
"""

import dataclasses

import numpy as np
import pytest

from repro.batch.population import PopulationSpec
from repro.batch.render import render_block
from repro.batch.sanity import (
    BatchEquivalenceError,
    check_block_equivalence,
)
from repro.scenarios import generate_wild_run
from repro.sim.sanitize import SanitizerError

#: test_channel_fast.py loss tolerance
LOSS_REL, LOSS_ABS = 1.0, 0.01


def pooled_stats(spec, block, positions):
    """(batch, event) per-link pooled loss over the given sessions."""
    batch = np.zeros(2)
    event = np.zeros(2)
    for pos in positions:
        run = generate_wild_run(
            block.indices[pos], spec.profile, seed=spec.root_seed,
            temporal_deltas=spec.deltas,
            mimo_branches=spec.mimo_branches, scenario=spec.scenario)
        assert run.scenario == block.scenarios[pos]
        for col, trace in enumerate((run.trace_a, run.trace_b)):
            batch[col] += np.mean(~block.delivered[pos, col])
            event[col] += np.mean(~trace.delivered)
    return batch / len(positions), event / len(positions)


@pytest.mark.parametrize("spec", [
    pytest.param(PopulationSpec(n_sessions=4, root_seed=0,
                                deltas=(0.0, 0.1), duration_s=20.0),
                 id="wild-mix"),
    pytest.param(PopulationSpec(n_sessions=4, root_seed=3,
                                duration_s=20.0, scenario="weak_link"),
                 id="gilbert-weak-link"),
    pytest.param(PopulationSpec(n_sessions=4, root_seed=5,
                                duration_s=20.0, scenario="mobility"),
                 id="fading-mobility"),
    pytest.param(PopulationSpec(n_sessions=4, root_seed=7,
                                duration_s=20.0, scenario="microwave"),
                 id="interference-microwave"),
    pytest.param(PopulationSpec(n_sessions=4, root_seed=9,
                                duration_s=20.0, scenario="congestion"),
                 id="interference-congestion"),
    pytest.param(PopulationSpec(n_sessions=3, root_seed=11,
                                duration_s=20.0, mimo_branches=2),
                 id="mimo-wild"),
])
def test_batch_matches_event_loss(spec):
    """Pooled per-link loss agrees with the event engine within the
    fast-renderer tolerances on every scenario family."""
    block = render_block(spec)
    batch, event = pooled_stats(spec, block, range(block.n_sessions))
    for col in range(2):
        assert abs(batch[col] - event[col]) \
            <= max(LOSS_REL * event[col], LOSS_ABS), \
            f"link {'AB'[col]}: batch {batch[col]:.4f} " \
            f"vs event {event[col]:.4f}"


def test_check_block_equivalence_passes_and_reports():
    spec = PopulationSpec(n_sessions=5, root_seed=1, deltas=(0.0,),
                          duration_s=20.0)
    block = render_block(spec)
    report = check_block_equivalence(spec, block, sample_sessions=3)
    assert len(report.indices) == 3
    assert all(0.0 <= loss <= 1.0 for loss in report.batch_loss)
    assert all(delay >= 0.0 for delay in report.event_delay_s)


def test_check_block_equivalence_detects_loss_divergence():
    """A corrupted block (everything lost on link A) must trip the
    sanitizer with a loss-divergence diagnosis."""
    spec = PopulationSpec(n_sessions=3, root_seed=2, duration_s=20.0)
    block = render_block(spec)
    corrupted = dataclasses.replace(
        block, delivered=np.zeros_like(block.delivered))
    with pytest.raises(BatchEquivalenceError, match="loss diverged"):
        check_block_equivalence(spec, corrupted, sample_sessions=2)


def test_check_block_equivalence_detects_scenario_divergence():
    spec = PopulationSpec(n_sessions=3, root_seed=2, duration_s=20.0)
    block = render_block(spec)
    corrupted = dataclasses.replace(
        block, scenarios=("definitely-wrong",) * block.n_sessions)
    with pytest.raises(BatchEquivalenceError, match="scenario"):
        check_block_equivalence(spec, corrupted, sample_sessions=1)


def test_equivalence_error_is_sanitizer_error():
    """Batch divergence surfaces through the standard sanitizer trap."""
    assert issubclass(BatchEquivalenceError, SanitizerError)


def test_sanitize_does_not_perturb_block_metrics(monkeypatch):
    """The equivalence check re-runs instrumented event sessions; their
    metrics must not leak into the block's registry, or sanitized and
    plain runs of the same population would print different digests."""
    from repro.batch.driver import population_block_metrics
    from repro.obs import to_canonical_json
    from repro.obs.runtime import collecting

    def run():
        with collecting() as registry:
            payloads = population_block_metrics(
                0, count=3, root_seed=0, duration_s=20.0)
        return payloads, to_canonical_json(registry)

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain_payloads, plain_metrics = run()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized_payloads, sanitized_metrics = run()
    assert sanitized_payloads == plain_payloads
    assert sanitized_metrics == plain_metrics


def test_driver_runs_sanitized(monkeypatch):
    """REPRO_SANITIZE=1 wires the check into the runner task."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.batch.driver import population_block_metrics
    payloads = population_block_metrics(
        0, count=3, root_seed=0, duration_s=20.0)
    assert len(payloads) == 3
    assert set(payloads[0]) == {"scenario", "worst_window", "poor",
                                "bursts", "autocorr", "crosscorr"}
