"""Tests for the scenario library (wild mix + office testbed)."""

import numpy as np
import pytest

from repro.core.config import StreamProfile
from repro.core.replication import render_paired_run
from repro.scenarios import (
    WILD_MIX,
    build_office_pair,
    build_scenario,
    generate_wild_runs,
    sample_scenario_name,
    scenario_counts,
)
from repro.sim.random import RandomRouter

SHORT = StreamProfile(duration_s=10.0)


def test_mix_weights_sum_to_one():
    assert sum(s.weight for s in WILD_MIX) == pytest.approx(1.0)


def test_sample_scenario_name_distribution():
    rng = RandomRouter(0).stream("pick")
    names = [sample_scenario_name(rng) for _ in range(3000)]
    counts = {name: names.count(name) / len(names)
              for name in sorted(set(names))}
    for spec in WILD_MIX:
        assert counts.get(spec.name, 0.0) == pytest.approx(
            spec.weight, abs=0.04)


@pytest.mark.parametrize("name", [s.name for s in WILD_MIX])
def test_every_scenario_builds_and_runs(name):
    router = RandomRouter(1)
    link_a, link_b = build_scenario(name, router)
    run = render_paired_run(link_a, link_b, SHORT, scenario=name)
    assert run.n_packets == SHORT.n_packets
    assert 0.0 <= run.trace_a.loss_rate <= 1.0
    assert run.rssi_a_dbm < 0.0    # RSSI sampled


def test_unknown_scenario_raises():
    with pytest.raises(ValueError):
        build_scenario("tsunami", RandomRouter(0))


def test_generate_wild_runs_tags_scenarios():
    runs = generate_wild_runs(6, SHORT, seed=2)
    counts = scenario_counts(runs)
    assert sum(counts.values()) == 6
    assert all(name in {s.name for s in WILD_MIX} for name in counts)


def test_generate_wild_runs_pinned_scenario():
    runs = generate_wild_runs(3, SHORT, seed=3, scenario="microwave")
    assert scenario_counts(runs) == {"microwave": 3}


def test_generate_wild_runs_deterministic():
    a = generate_wild_runs(3, SHORT, seed=4)
    b = generate_wild_runs(3, SHORT, seed=4)
    for run_a, run_b in zip(a, b):
        assert np.array_equal(run_a.trace_a.delivered,
                              run_b.trace_a.delivered)
        assert run_a.scenario == run_b.scenario


def test_wild_runs_offset_traces_present():
    runs = generate_wild_runs(2, SHORT, seed=5, temporal_deltas=(0.0, 0.1))
    assert set(runs[0].offset_traces) == {0.0, 0.1}


def test_office_pair_primary_is_stronger():
    for seed in range(5):
        router = RandomRouter(seed)
        primary, secondary = build_office_pair(router)
        assert (primary.rssi_dbm(0.0) >= secondary.rssi_dbm(0.0) - 12.0)
        # (shadowing can perturb individual readings; distance dominates)


def test_office_pair_on_different_channels():
    primary, secondary = build_office_pair(RandomRouter(9))
    assert primary.config.channel != secondary.config.channel


def test_office_secondary_statistically_worse():
    """Across many locations the far link must lose more packets."""
    primary_losses, secondary_losses = [], []
    for seed in range(8):
        router = RandomRouter(seed + 100)
        primary, secondary = build_office_pair(router)
        primary_losses.append(primary.generate_trace(SHORT).loss_rate)
        secondary_losses.append(secondary.generate_trace(SHORT).loss_rate)
    assert np.mean(secondary_losses) >= np.mean(primary_losses)


def test_microwave_scenario_correlates_links():
    """Shared-fate interference must raise cross-link loss correlation
    relative to the independent-impairment scenarios."""
    from repro.analysis.correlation import loss_crosscorrelation
    longer = StreamProfile(duration_s=60.0)

    def mean_crosscorr(scenario, seeds):
        values = []
        for seed in seeds:
            router = RandomRouter(seed)
            link_a, link_b = build_scenario(scenario, router)
            run = render_paired_run(link_a, link_b, longer)
            cc = loss_crosscorrelation(run.trace_a, run.trace_b, max_lag=3)
            values.append(np.mean(cc))
        return float(np.mean(values))

    micro = mean_crosscorr("microwave", range(30, 36))
    weak = mean_crosscorr("weak_link", range(30, 36))
    assert micro > weak - 0.02
