"""Tests for the voice-quality pipeline: codec, playout, concealment,
E-model, and PCR."""

import math

import numpy as np
import pytest

from repro.core.packet import LinkTrace, StreamTrace
from repro.voice.concealment import account_concealment
from repro.voice.g711 import (
    BYTES_PER_FRAME,
    G711Codec,
    G711Frame,
    SAMPLES_PER_FRAME,
)
from repro.voice.pcr import POOR_MOS_THRESHOLD, poor_call_rate, score_call
from repro.voice.playout import PlayoutBuffer
from repro.voice.quality import (
    burst_ratio,
    delay_impairment,
    emodel_r_factor,
    loss_impairment,
    r_to_mos,
)


def trace_from_losses(losses, spacing=0.02, delay=0.01):
    delivered = [not bool(x) for x in losses]
    delays = [delay if d else math.nan for d in delivered]
    return LinkTrace("t", np.arange(len(losses)) * spacing,
                     delivered, delays)


# -------------------------------------------------------------------- G711

def test_g711_frame_constants():
    assert SAMPLES_PER_FRAME == 160
    assert BYTES_PER_FRAME == 160


def test_g711_encode_decode_roundtrip_small_error():
    rng = np.random.default_rng(0)
    pcm = (rng.normal(0, 3000, SAMPLES_PER_FRAME)).astype(np.int16)
    decoded = G711Codec.decode(G711Codec.encode(pcm))
    # Mu-law SNR on speech-level signals is ~35 dB; loose bound here.
    error = np.abs(decoded.astype(float) - pcm.astype(float))
    assert np.mean(error) < 200


def test_g711_encode_wrong_length_raises():
    with pytest.raises(ValueError):
        G711Codec.encode(np.zeros(100, dtype=np.int16))


def test_g711_silence_roundtrip_exact():
    pcm = np.zeros(SAMPLES_PER_FRAME, dtype=np.int16)
    decoded = G711Codec.decode(G711Codec.encode(pcm))
    assert np.all(np.abs(decoded.astype(int)) <= 130)


def test_g711_frame_validates_size():
    with pytest.raises(ValueError):
        G711Frame(0, b"short")


def test_encode_stream_packetizes():
    pcm = np.zeros(SAMPLES_PER_FRAME * 3 + 10, dtype=np.int16)
    frames = G711Codec.encode_stream(pcm)
    assert len(frames) == 3
    assert [f.seq for f in frames] == [0, 1, 2]


# ------------------------------------------------------------------ playout

def test_playout_on_time_frames_played():
    trace = trace_from_losses([0, 0, 0], delay=0.01)
    result = PlayoutBuffer(0.100).replay(trace)
    assert result.played.all()
    assert result.effective_loss_rate == 0.0


def test_playout_late_frame_counts_lost():
    trace = trace_from_losses([0, 0], delay=0.150)
    result = PlayoutBuffer(0.100).replay(trace)
    assert not result.played.any()
    assert result.late_losses == 2
    assert result.network_losses == 0


def test_playout_network_losses_counted():
    trace = trace_from_losses([1, 0, 1])
    result = PlayoutBuffer(0.100).replay(trace)
    assert result.network_losses == 2
    assert result.effective_loss_rate == pytest.approx(2 / 3)


def test_playout_delay_must_be_positive():
    with pytest.raises(ValueError):
        PlayoutBuffer(0.0)


# -------------------------------------------------------------- concealment

def concealment_of(losses):
    trace = trace_from_losses(losses)
    return account_concealment(PlayoutBuffer(0.1).replay(trace))


def test_isolated_loss_is_interpolated():
    acc = concealment_of([0, 1, 0, 0])
    assert acc.interpolated_frames == 1
    assert acc.extrapolated_frames == 0


def test_burst_losses_extrapolated():
    acc = concealment_of([0, 1, 1, 1, 0])
    assert acc.interpolated_frames == 0
    assert acc.extrapolated_frames == 3


def test_leading_loss_extrapolated():
    acc = concealment_of([1, 0, 0])
    assert acc.extrapolated_frames == 1


def test_trailing_loss_extrapolated():
    acc = concealment_of([0, 0, 1])
    assert acc.extrapolated_frames == 1


def test_concealment_fractions():
    acc = concealment_of([0, 1, 0, 1, 1, 0, 0, 0, 0, 0])
    assert acc.interpolated_frames == 1
    assert acc.extrapolated_frames == 2
    assert acc.concealment_fraction == pytest.approx(0.3)
    assert acc.extrapolation_fraction == pytest.approx(0.2)
    assert acc.interpolated_samples == 160
    assert acc.extrapolated_samples == 320


# ------------------------------------------------------------------ E-model

def test_r_decreases_with_loss():
    r_clean = emodel_r_factor(0.0, 0.05)
    r_lossy = emodel_r_factor(0.05, 0.05)
    assert r_lossy < r_clean


def test_r_decreases_with_delay():
    assert emodel_r_factor(0.0, 0.400) < emodel_r_factor(0.0, 0.050)


def test_bursty_loss_hurts_more():
    random_loss = emodel_r_factor(0.02, 0.05, mean_burst_len=1.0)
    bursty_loss = emodel_r_factor(0.02, 0.05, mean_burst_len=4.0)
    assert bursty_loss < random_loss


def test_burst_ratio_floor_is_one():
    assert burst_ratio(0.02, 0.5) == 1.0
    assert burst_ratio(0.02, 4.0) > 1.0


def test_loss_impairment_zero_at_no_loss():
    assert loss_impairment(0.0) == 0.0


def test_delay_impairment_grows():
    assert delay_impairment(0.050) < delay_impairment(0.300)


def test_mos_range_and_monotone():
    values = [r_to_mos(r) for r in (0, 20, 50, 70, 90, 100)]
    assert values[0] == 1.0 and values[-1] == 4.5
    assert all(a <= b for a, b in zip(values, values[1:]))


# --------------------------------------------------------------------- PCR

def test_clean_call_not_poor():
    trace = trace_from_losses([0] * 6000)
    score = score_call(trace)
    assert score.mos > 4.0
    assert not score.is_poor(POOR_MOS_THRESHOLD)


def test_heavily_lossy_call_poor():
    rng = np.random.default_rng(1)
    losses = (rng.random(6000) < 0.15).astype(int)
    score = score_call(trace_from_losses(losses))
    assert score.is_poor(POOR_MOS_THRESHOLD)


def test_pcr_mixed_population():
    clean = trace_from_losses([0] * 6000)
    rng = np.random.default_rng(2)
    bad = trace_from_losses((rng.random(6000) < 0.2).astype(int))
    assert poor_call_rate([clean, clean, clean, bad]) == pytest.approx(0.25)


def test_pcr_empty_raises():
    with pytest.raises(ValueError):
        poor_call_rate([])


def test_score_accepts_stream_trace():
    n = 1000
    st = StreamTrace(n_packets=n, send_times=np.arange(n) * 0.02)
    for seq in range(n):
        st.record_arrival(seq, seq * 0.02 + 0.01)
    score = score_call(st)
    assert score.loss_fraction == 0.0


def test_worst_window_pulls_score_down():
    clean = trace_from_losses([0] * 6000)
    one_bad_window = [0] * 6000
    for i in range(3000, 3250):   # one solid 5-s outage
        one_bad_window[i] = 1
    bad = trace_from_losses(one_bad_window)
    assert score_call(bad).mos < score_call(clean).mos
