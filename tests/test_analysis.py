"""Tests for the analysis layer: windows, bursts, correlation, CDFs."""

import math

import numpy as np
import pytest

from repro.analysis.bursts import burst_histogram, burst_lengths, burst_stats
from repro.analysis.cdf import EmpiricalCdf, percentile
from repro.analysis.correlation import (
    loss_autocorrelation,
    loss_crosscorrelation,
    mean_correlation_series,
)
from repro.analysis.report import (
    render_cdf_series,
    render_histogram,
    render_table,
)
from repro.analysis.windows import (
    assign_windows,
    window_loss_rates,
    window_loss_rates_timed,
    worst_window_loss,
)
from repro.core.packet import LinkTrace


def trace_from_losses(losses, spacing=0.02):
    delivered = [not bool(x) for x in losses]
    delays = [0.005 if d else math.nan for d in delivered]
    return LinkTrace("t", np.arange(len(losses)) * spacing,
                     delivered, delays)


# ----------------------------------------------------------------- windows

def test_window_rates_basic():
    # 20 ms spacing, 5 s window -> 250 packets/window.
    losses = [0] * 250 + [1] * 25 + [0] * 225
    rates = window_loss_rates(trace_from_losses(losses))
    assert rates.tolist() == [0.0, 0.1]


def test_worst_window_picks_max():
    losses = [0] * 250 + [1] * 125 + [0] * 125 + [1] * 250
    assert worst_window_loss(trace_from_losses(losses)) == 1.0


def test_partial_trailing_window_counted():
    losses = [0] * 250 + [1] * 10
    rates = window_loss_rates(trace_from_losses(losses))
    assert len(rates) == 2
    assert rates[1] == 1.0


def test_assign_windows_boundary_belongs_to_later_window():
    # Half-open [start, end): the 5.0 s timestamp is in window 1, never
    # in both windows 0 and 1.
    ids = assign_windows(np.array([0.0, 4.98, 5.0, 5.02, 10.0]),
                         window_s=5.0)
    assert ids.tolist() == [0, 0, 1, 1, 2]


def test_assign_windows_tiles_without_double_counting():
    times = np.arange(0.0, 15.0, 0.5)
    ids = assign_windows(times, window_s=5.0)
    assert np.bincount(ids).sum() == times.size
    assert ids.max() == 2


def test_assign_windows_validation():
    with pytest.raises(ValueError):
        assign_windows(np.array([1.0]), window_s=0.0)
    with pytest.raises(ValueError):
        assign_windows(np.array([-1.0]), window_s=5.0)


def test_window_loss_rates_timed_boundary_packet_counted_once():
    # A lost packet exactly on the 5 s boundary affects only window 1.
    times = np.array([0.0, 2.5, 5.0, 7.5])
    losses = np.array([0.0, 0.0, 1.0, 0.0])
    rates = window_loss_rates_timed(times, losses, window_s=5.0)
    assert rates.tolist() == [0.0, 0.5]


def test_window_loss_rates_timed_empty_interior_window():
    times = np.array([0.0, 12.0])
    losses = np.array([1.0, 1.0])
    rates = window_loss_rates_timed(times, losses, window_s=5.0)
    assert rates.tolist() == [1.0, 0.0, 1.0]


def test_window_loss_rates_timed_matches_block_slicing_on_regular_grid():
    rng = np.random.default_rng(7)
    losses = (rng.random(1000) < 0.07).astype(float)
    times = np.arange(1000) * 0.020
    timed = window_loss_rates_timed(times, losses, window_s=5.0)
    block = window_loss_rates(losses, window_s=5.0,
                              inter_packet_spacing_s=0.020)
    assert timed.tolist() == block.tolist()


def test_worst_window_accepts_arrays():
    # window of one packet (0.02 s at 20 ms spacing) -> worst is the loss
    assert worst_window_loss(np.array([1.0, 0.0, 0.0, 0.0]),
                             window_s=0.02) == 1.0


def test_empty_trace_zero():
    assert worst_window_loss(np.array([])) == 0.0


def test_window_respects_spacing():
    # 1.6 ms spacing -> 3125 packets per 5 s window.
    losses = [1] * 3125 + [0] * 3125
    rates = window_loss_rates(np.array(losses),
                              inter_packet_spacing_s=0.0016)
    assert rates.tolist() == [1.0, 0.0]


# ------------------------------------------------------------------ bursts

def test_burst_lengths_identifies_runs():
    assert burst_lengths(np.array([0, 1, 1, 0, 1, 0, 1, 1, 1])) == [2, 1, 3]


def test_burst_lengths_run_at_end():
    assert burst_lengths(np.array([0, 1, 1])) == [2]


def test_burst_lengths_no_losses():
    assert burst_lengths(np.array([0, 0, 0])) == []


def test_burst_histogram_averages_per_call():
    t1 = np.array([1, 0, 1, 1, 0])     # one 1-burst, one 2-burst
    t2 = np.array([0, 0, 0, 0, 0])     # clean
    hist = burst_histogram([t1, t2])
    assert hist["1"] == pytest.approx(0.5)   # 1 lost packet / 2 calls
    assert hist["2"] == pytest.approx(1.0)   # 2 lost packets / 2 calls


def test_burst_histogram_overflow_bucket():
    t = np.array([1] * 15)
    hist = burst_histogram([t], max_bucket=10)
    assert hist[">10"] == pytest.approx(15.0)


def test_burst_stats_split():
    t = np.array([1, 0, 1, 1, 0, 1, 1, 1])
    stats = burst_stats([t])
    assert stats.mean_lost == pytest.approx(6.0)
    assert stats.mean_lost_in_bursts == pytest.approx(5.0)
    assert stats.bursty_fraction == pytest.approx(5.0 / 6.0)


def test_burst_stats_empty():
    stats = burst_stats([])
    assert stats.mean_lost == 0.0
    assert stats.bursty_fraction == 0.0


# ------------------------------------------------------------- correlation

def test_autocorrelation_of_bursty_process_positive():
    rng = np.random.default_rng(0)
    # Markov loss chain: sticky states -> positive lag-1 autocorrelation.
    state, xs = 0, []
    for _ in range(20000):
        if rng.random() < 0.02:
            state = 1 - state
        xs.append(state)
    ac = loss_autocorrelation(np.array(xs, dtype=float), max_lag=5)
    assert ac[0] > 0.8
    assert all(ac[i] >= ac[i + 1] - 0.05 for i in range(4))


def test_crosscorrelation_of_independent_processes_near_zero():
    rng = np.random.default_rng(1)
    a = (rng.random(20000) < 0.05).astype(float)
    b = (rng.random(20000) < 0.05).astype(float)
    cc = loss_crosscorrelation(a, b, max_lag=5)
    assert np.all(np.abs(cc) < 0.05)


def test_correlation_degenerate_series_zero():
    a = np.zeros(100)
    assert np.all(loss_autocorrelation(a, max_lag=3) == 0.0)


def test_crosscorrelation_identical_series_is_autocorrelation():
    rng = np.random.default_rng(2)
    x = (rng.random(5000) < 0.2).astype(float)
    ac = loss_autocorrelation(x, max_lag=4)
    cc = loss_crosscorrelation(x, x, max_lag=4)
    assert np.allclose(ac, cc)


def test_mean_correlation_series_averages():
    a = np.array([1, 1, 0, 0] * 100, dtype=float)
    pairs = [(a, a), (a, a)]
    auto = mean_correlation_series(pairs, max_lag=3)
    single = loss_autocorrelation(a, max_lag=3)
    assert np.allclose(auto, single)


# --------------------------------------------------------------------- cdf

def test_percentile_basic():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_cdf_evaluate():
    cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
    assert cdf.evaluate(2.0) == pytest.approx(0.5)
    assert cdf.evaluate(0.0) == 0.0
    assert cdf.evaluate(10.0) == 1.0


def test_cdf_quantile_bounds():
    cdf = EmpiricalCdf([5.0, 10.0])
    with pytest.raises(ValueError):
        cdf.quantile(1.5)
    assert cdf.quantile(0.0) == 5.0
    assert cdf.quantile(1.0) == 10.0


def test_cdf_series_monotone():
    cdf = EmpiricalCdf(np.random.default_rng(3).random(500))
    points = cdf.series(points=50)
    xs = [x for x, _ in points]
    fs = [f for _, f in points]
    assert xs == sorted(xs)
    assert fs == sorted(fs)
    assert len(points) == 50


def test_cdf_empty_raises():
    with pytest.raises(ValueError):
        EmpiricalCdf([])


def test_cdf_stats():
    cdf = EmpiricalCdf([2.0, 4.0, 6.0])
    assert cdf.mean == pytest.approx(4.0)
    assert cdf.median == pytest.approx(4.0)
    assert len(cdf) == 3


# ------------------------------------------------------------------ report

def test_render_table_contains_cells():
    out = render_table("Title", ["a", "b"], [[1, 2.5], ["x", "y"]])
    assert "Title" in out and "2.50" in out and "x" in out


def test_render_cdf_series_percentiles():
    points = [(float(i), (i + 1) / 10.0) for i in range(10)]
    out = render_cdf_series("CDF", {"s": points})
    assert "s" in out and "p90" in out


def test_render_histogram_bars():
    out = render_histogram("H", {"1": 10.0, "2": 5.0})
    assert "#" in out and "10.00" in out
