"""Unit tests for coroutine-style processes."""

import pytest

from repro.sim import Simulator, Timeout, WaitEvent
from repro.sim.engine import SimulationError
from repro.sim.process import Interrupted, Process, Signal


def test_process_runs_timeouts():
    sim = Simulator()
    ticks = []

    def proc():
        for _ in range(3):
            ticks.append(sim.now)
            yield Timeout(1.0)

    Process(sim, proc())
    sim.run()
    assert ticks == [0.0, 1.0, 2.0]


def test_process_return_value_captured():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    p = Process(sim, proc())
    sim.run()
    assert p.result == 42
    assert not p.alive


def test_zero_timeout_defers_not_reentrant():
    sim = Simulator()
    order = []

    def proc():
        order.append("proc")
        yield Timeout(0.0)
        order.append("proc2")

    def starter():
        Process(sim, proc())
        order.append("starter-done")

    sim.call_at(0.0, starter)
    sim.run()
    # The process body must not run inside starter's event.
    assert order == ["starter-done", "proc", "proc2"]


def test_wait_event_receives_value():
    sim = Simulator()
    signal = Signal()
    got = []

    def waiter():
        value = yield WaitEvent(signal)
        got.append((sim.now, value))

    Process(sim, waiter())
    sim.call_at(2.0, signal.trigger, "hello")
    sim.run()
    assert got == [(2.0, "hello")]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    signal = Signal()
    woken = []

    def waiter(name):
        yield WaitEvent(signal)
        woken.append(name)

    Process(sim, waiter("a"))
    Process(sim, waiter("b"))
    sim.call_at(1.0, signal.trigger)
    sim.run()
    assert sorted(woken) == ["a", "b"]


def test_signal_trigger_returns_count():
    sim = Simulator()
    signal = Signal()

    def waiter():
        yield WaitEvent(signal)

    Process(sim, waiter())
    counts = []
    sim.call_at(1.0, lambda: counts.append(signal.trigger()))
    sim.call_at(2.0, lambda: counts.append(signal.trigger()))
    sim.run()
    assert counts == [1, 0]


def test_interrupt_throws_into_process():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield Timeout(100.0)
        except Interrupted as exc:
            caught.append((sim.now, exc.cause))

    p = Process(sim, proc())
    sim.call_at(3.0, p.interrupt, "reason")
    sim.run()
    assert caught == [(3.0, "reason")]
    assert not p.alive


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    p = Process(sim, proc())
    sim.run()
    assert not p.alive
    p.interrupt()  # must not raise
    sim.run()


def test_unsupported_yield_raises():
    sim = Simulator()

    def proc():
        yield "not-a-command"

    Process(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-0.5)


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def ticker(name, period):
        for _ in range(3):
            trace.append((sim.now, name))
            yield Timeout(period)

    Process(sim, ticker("fast", 1.0))
    Process(sim, ticker("slow", 2.0))
    sim.run()
    # At t=2.0 the slow ticker's wakeup was scheduled first (at t=0.0),
    # so FIFO tie-breaking runs it before the fast ticker's (from t=1.0).
    assert trace == [
        (0.0, "fast"), (0.0, "slow"),
        (1.0, "fast"), (2.0, "slow"), (2.0, "fast"), (4.0, "slow"),
    ]
