"""Tests for reproflow pass 3 (``callgraph`` + ``dataflow``).

Each new family (FLO / PUR / ORD) gets triggering, clean, and
suppressed fixtures; the call graph is tested for resolution,
ambiguity guarding, effect collection and the returns-stream fixpoint;
the seeded cross-module leak (stream created in the router module,
returned through a helper in another module, stored into module state
in a third) and the impure-runner-task case are each proven to be
caught; and the real CLI is run over seeded violations.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import ast                                                    # noqa: E402

from reproflow.callgraph import (                             # noqa: E402
    CLOCK_READ,
    GLOBAL_WRITE,
    UNROUTED_RNG,
    build_callgraph,
    dotted_module_name,
)
from reproflow.dataflow import propagate_effects              # noqa: E402
from reproflow.engine import analyze_source                   # noqa: E402
from reproflow.index import build_index                       # noqa: E402
from reproflow.policy import DEFAULT_POLICY                   # noqa: E402


def analyze(source, path="pkg/module.py", rules=None, extra=None):
    return analyze_source(textwrap.dedent(source), path, rules=rules,
                          extra=extra)


def rule_ids(findings):
    return [f.rule for f in findings]


def graph_of(modules):
    """Build index + call graph from ``{path: source}``."""
    sources = {p: textwrap.dedent(s) for p, s in modules.items()}
    trees = {p: ast.parse(s, filename=p) for p, s in sources.items()}
    return build_callgraph(trees, sources, build_index(trees))


# ------------------------------------------------------------------
# Per-family fixtures: (trigger source, clean source, suppressed source).
# ------------------------------------------------------------------

FAMILY_FIXTURES = {
    "FLO": (
        """
        class RandomRouter:
            def __init__(self, seed=0):
                self.seed = seed
            def stream(self, name):
                return object()

        ROUTER = RandomRouter(7)
        SHARED = ROUTER.stream("module.state")
        """,
        """
        class RandomRouter:
            def __init__(self, seed=0):
                self.seed = seed
            def stream(self, name):
                return object()

        def build(router):
            loss = router.stream("link.loss")
            delay = router.stream("link.delay")
            return (loss.__class__, delay.__class__)
        """,
        """
        class RandomRouter:
            def __init__(self, seed=0):
                self.seed = seed
            def stream(self, name):
                return object()

        ROUTER = RandomRouter(7)
        SHARED = ROUTER.stream("module.state")  # reproflow: disable=FLO002
        """,
    ),
    "PUR": (
        """
        import time

        def slow_task(seed, config=None):
            time.time()
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:slow_task", configs)
        """,
        """
        def pure_task(seed, config=None):
            return seed * 2

        def submit(runner, configs):
            return runner.map_task("pkg.module:pure_task", configs)
        """,
        """
        import time

        def slow_task(seed, config=None):
            time.time()
            return seed

        def submit(runner, configs):
            return runner.map_task(  # reproflow: disable=PUR102
                "pkg.module:slow_task", configs)
        """,
    ),
    "ORD": (
        """
        def merge(metrics):
            links = {m.link for m in metrics}
            out = []
            for link in links:
                out.append(link)
            return out
        """,
        """
        def merge(metrics):
            links = {m.link for m in metrics}
            out = []
            for link in sorted(links):
                out.append(link)
            return out
        """,
        """
        def merge(metrics):
            links = {m.link for m in metrics}
            out = []
            for link in links:  # reproflow: disable=ORD201
                out.append(link)
            return out
        """,
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_triggers(family):
    trigger, _, _ = FAMILY_FIXTURES[family]
    findings = analyze(trigger)
    assert any(r.startswith(family) for r in rule_ids(findings)), findings


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_clean(family):
    _, clean, _ = FAMILY_FIXTURES[family]
    findings = analyze(clean)
    assert not any(r.startswith(family) for r in rule_ids(findings)), findings


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_suppressed(family):
    _, _, suppressed = FAMILY_FIXTURES[family]
    findings = analyze(suppressed)
    assert not any(r.startswith(family) for r in rule_ids(findings)), findings


# ------------------------------------------------------------------
# FLO001: stream aliasing.
# ------------------------------------------------------------------

STREAM_PRELUDE = """
    class RandomRouter:
        def __init__(self, seed=0):
            self.seed = seed
        def stream(self, name):
            return object()
"""


def test_flo001_stream_handed_to_two_components():
    findings = analyze(STREAM_PRELUDE + """
        def build(router):
            shared = router.stream("fading")
            first = FadingProcess(shared)
            second = MacLayer(shared)
            return first, second
    """)
    assert "FLO001" in rule_ids(findings)


def test_flo001_exclusive_branches_are_clean():
    findings = analyze(STREAM_PRELUDE + """
        def build(router, rician):
            shared = router.stream("fading")
            if rician:
                fading = RicianFading(shared)
            else:
                fading = RayleighFading(shared)
            return fading
    """)
    assert "FLO001" not in rule_ids(findings)


def test_flo001_stream_retained_inside_loop():
    findings = analyze(STREAM_PRELUDE + """
        def build(router, links):
            shared = router.stream("loss")
            out = []
            for link in links:
                out.append(LinkProcess(shared))
            return out
    """)
    assert "FLO001" in rule_ids(findings)


def test_flo001_drawing_helper_calls_are_clean():
    # Sequential draws through one stream (lowercase helpers that
    # consume and return) are deterministic — not aliasing.
    findings = analyze(STREAM_PRELUDE + """
        def sample_a(rng):
            return rng
        def sample_b(rng):
            return rng
        def build(router):
            rng = router.stream("params")
            return sample_a(rng), sample_b(rng)
    """)
    assert "FLO001" not in rule_ids(findings)


# ------------------------------------------------------------------
# FLO002: stream escaping into module state — including the seeded
# cross-module case from the issue: the stream is created in the router
# module, returned through a helper in a *second* module, and stored
# into module state in a *third*.
# ------------------------------------------------------------------

def test_flo002_global_statement_store():
    findings = analyze(STREAM_PRELUDE + """
        _CACHE = None

        def setup(router):
            global _CACHE
            _CACHE = router.stream("leaked")
    """)
    assert "FLO002" in rule_ids(findings)


def test_flo002_instance_attribute_is_clean():
    findings = analyze(STREAM_PRELUDE + """
        class Link:
            def __init__(self, router):
                self._rng = router.stream("link.loss")
    """)
    assert "FLO002" not in rule_ids(findings)


def test_flo002_cross_module_leak_through_helper():
    router_mod = """
        class RandomRouter:
            def __init__(self, seed=0):
                self.seed = seed
            def stream(self, name):
                return object()
    """
    helper_mod = """
        def shared_stream(router):
            return router.stream("shared")
    """
    leaky = """
        from repro.util.helpers import shared_stream

        FALLBACK = None

        def setup(router):
            global FALLBACK
            FALLBACK = shared_stream(router)
    """
    findings = analyze(
        leaky, path="src/repro/studies/leaky.py",
        extra={"src/repro/sim/random.py": textwrap.dedent(router_mod),
               "src/repro/util/helpers.py": textwrap.dedent(helper_mod)})
    assert "FLO002" in rule_ids(findings)
    assert "FALLBACK" in [f.message for f in findings
                          if f.rule == "FLO002"][0]


# ------------------------------------------------------------------
# FLO003: seed reuse across independent realizations.
# ------------------------------------------------------------------

def test_flo003_loop_invariant_seed_triggers():
    findings = analyze(STREAM_PRELUDE + """
        def run_all(n):
            routers = []
            for i in range(n):
                routers.append(RandomRouter(42))
            return routers
    """)
    assert "FLO003" in rule_ids(findings)


def test_flo003_derived_seed_is_clean():
    findings = analyze(STREAM_PRELUDE + """
        def run_all(n):
            routers = []
            for i in range(n):
                routers.append(RandomRouter(1000 + i))
            return routers
    """)
    assert "FLO003" not in rule_ids(findings)


def test_flo003_strategy_loop_not_flagged():
    # Paired comparison: same seed across *strategies* is the
    # methodology, not a bug — only realization loops (range/seeds)
    # are checked.
    findings = analyze(STREAM_PRELUDE + """
        def compare(strategies):
            out = []
            for strategy in strategies:
                out.append(RandomRouter(42))
            return out
    """)
    assert "FLO003" not in rule_ids(findings)


def test_flo003_exempt_under_tests_policy():
    assert DEFAULT_POLICY.exempt("tests/test_digest.py", "FLO003")
    assert not DEFAULT_POLICY.exempt("src/repro/studies/a.py", "FLO003")


# ------------------------------------------------------------------
# PUR: runner-task purity (the cache-poisoning proof).
# ------------------------------------------------------------------

def test_pur101_global_mutation_is_caught():
    findings = analyze("""
        COUNTER = {"n": 0}

        def counting_task(seed, config=None):
            COUNTER["n"] = COUNTER["n"] + 1
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:counting_task", configs)
    """)
    assert "PUR101" in rule_ids(findings)


def test_pur102_transitive_clock_read_shows_chain():
    findings = analyze("""
        import time

        def _helper():
            return time.time()

        def outer_task(seed, config=None):
            return _helper()

        def submit(runner, configs):
            return runner.map_task("pkg.module:outer_task", configs)
    """)
    pur = [f for f in findings if f.rule == "PUR102"]
    assert pur, findings
    assert "via" in pur[0].message and "_helper" in pur[0].message


def test_pur103_unrouted_rng_in_task():
    findings = analyze("""
        import random

        def noisy_task(seed, config=None):
            return random.random()

        def submit(runner, configs):
            return runner.map_configs("pkg.module:noisy_task", configs)
    """)
    assert "PUR103" in rule_ids(findings)


def test_pur_seeded_rng_construction_is_pure():
    # default_rng(seed) / SeedSequence(entropy=...) are deterministic
    # routing — the RandomRouter itself must not be flagged.
    findings = analyze("""
        import numpy as np

        def routed_task(seed, config=None):
            rng = np.random.default_rng(seed)
            return float(rng.uniform())

        def submit(runner, configs):
            return runner.map_task("pkg.module:routed_task", configs)
    """)
    assert "PUR103" not in rule_ids(findings)


def test_pur_sanctioned_telemetry_is_pure():
    findings = analyze("""
        import time

        def timed_task(seed, config=None):
            started = time.perf_counter()  # reprolint: disable=DET002
            return seed, started

        def submit(runner, configs):
            return runner.map_task("pkg.module:timed_task", configs)
    """)
    assert "PUR102" not in rule_ids(findings)


def test_pur_entry_via_module_constant():
    findings = analyze("""
        import time

        TASK = "pkg.module:slow_task"

        def slow_task(seed, config=None):
            time.sleep(0.1)
            return seed

        def submit(runner, configs):
            return runner.map_task(TASK, configs)
    """)
    assert "PUR102" in rule_ids(findings)


def test_pur_runspec_build_is_a_root():
    findings = analyze("""
        import random

        def jittery(seed, config=None):
            return random.random()

        def submit(RunSpec):
            return RunSpec.build("pkg.module:jittery", 1)
    """)
    assert "PUR103" in rule_ids(findings)


# ------------------------------------------------------------------
# ORD: iteration-order hazards.
# ------------------------------------------------------------------

def test_ord201_dictcomp_over_set():
    findings = analyze("""
        def tally(names):
            return {name: names.count(name) for name in set(names)}
    """)
    assert "ORD201" in rule_ids(findings)


def test_ord201_keyed_write_in_loop():
    findings = analyze("""
        def index(packets):
            seqs = {p.seq for p in packets}
            table = {}
            for seq in seqs:
                table[seq] = True
            return table
    """)
    assert "ORD201" in rule_ids(findings)


def test_ord201_set_to_set_is_clean():
    findings = analyze("""
        def survivors(rules, disabled):
            return {r for r in rules if r not in disabled}
    """)
    assert "ORD201" not in rule_ids(findings)


def test_ord201_membership_and_len_are_clean():
    findings = analyze("""
        def check(links, name):
            pending = set(links)
            return name in pending, len(pending), sorted(pending)
    """)
    assert rule_ids(findings) == []


def test_ord202_sum_over_set():
    findings = analyze("""
        def total(delays):
            pending = set(delays)
            return sum(pending)
    """)
    assert "ORD202" in rule_ids(findings)


def test_ord202_accumulation_in_loop_over_set():
    findings = analyze("""
        def total(delays):
            pending = set(delays)
            acc = 0.0
            for d in pending:
                acc += d
            return acc
    """)
    assert "ORD202" in rule_ids(findings)


def test_ord202_sorted_reduction_is_clean():
    findings = analyze("""
        def total(delays):
            pending = set(delays)
            return sum(sorted(pending))
    """)
    assert "ORD202" not in rule_ids(findings)


def test_ord201_set_attribute_load():
    findings = analyze("""
        class Tracker:
            def __init__(self):
                self.pending = set()

            def drain(self):
                return list(self.pending)
    """)
    assert "ORD201" in rule_ids(findings)


def test_ord201_returns_set_helper_propagates():
    findings = analyze("""
        def pending_links(links):
            return {l for l in links if l.up}

        def drain(links):
            return list(pending_links(links))
    """)
    assert "ORD201" in rule_ids(findings)


# ------------------------------------------------------------------
# Call graph unit tests.
# ------------------------------------------------------------------

def test_dotted_module_name():
    assert dotted_module_name("src/repro/sim/random.py") == \
        "repro.sim.random"
    assert dotted_module_name("tools/reproflow/cli.py") == "reproflow.cli"
    assert dotted_module_name("src/repro/__init__.py") == "repro"
    assert dotted_module_name("pkg/module.py") == "pkg.module"


def test_callgraph_same_module_call_resolved():
    graph = graph_of({"a/mod.py": """
        def helper():
            return 1
        def caller():
            return helper()
    """})
    caller = graph.nodes["a/mod.py::caller"]
    assert [c.callee for c in caller.calls] == ["a/mod.py::helper"]


def test_callgraph_ambiguous_name_drops_edge():
    graph = graph_of({
        "a/one.py": "def helper():\n    return 1\n",
        "a/two.py": "def helper():\n    return 2\n",
        "a/use.py": "def caller():\n    return helper()\n",
    })
    caller = graph.nodes["a/use.py::caller"]
    assert caller.calls == []


def test_callgraph_self_method_prefers_own_class():
    graph = graph_of({"a/mod.py": """
        class Worker:
            def step(self):
                return 1
            def run(self):
                return self.step()

        class Other:
            def step(self):
                return 2
    """})
    run = graph.nodes["a/mod.py::Worker.run"]
    assert [c.callee for c in run.calls] == ["a/mod.py::Worker.step"]


def test_callgraph_effects_and_sanction():
    graph = graph_of({"a/mod.py": """
        import time
        STATE = []

        def impure():
            STATE.append(time.time())

        def telemetry():
            return time.perf_counter()  # reprolint: disable=DET002
    """})
    impure = graph.nodes["a/mod.py::impure"]
    kinds = {e.kind for e in impure.effects}
    assert GLOBAL_WRITE in kinds and CLOCK_READ in kinds
    telemetry = graph.nodes["a/mod.py::telemetry"]
    assert telemetry.effects == []


def test_returns_stream_fixpoint_through_two_hops():
    graph = graph_of({
        "a/base.py": """
            def make(router):
                return router.stream("x")
        """,
        "a/mid.py": """
            def relay(router):
                return make(router)
        """,
    })
    assert graph.nodes["a/base.py::make"].returns_stream
    assert graph.nodes["a/mid.py::relay"].returns_stream


def test_propagate_effects_builds_chain():
    graph = graph_of({"a/mod.py": """
        import random

        def leaf():
            return random.random()

        def mid():
            return leaf()

        def root():
            return mid()
    """})
    summaries = propagate_effects(graph)
    effect = summaries["a/mod.py::root"][UNROUTED_RNG]
    assert effect.chain == ("a/mod.py::root", "a/mod.py::mid",
                            "a/mod.py::leaf")
    described = effect.describe(graph)
    assert "root -> mid -> leaf" in described


def test_task_root_collection():
    graph = graph_of({"a/mod.py": """
        TASK = "a.mod:work"

        def work(seed, config=None):
            return seed

        def submit(runner, configs):
            runner.map_task(TASK, configs)
            runner.map_configs("a.mod:work", configs)
    """})
    entries = {(r.entry, r.submit_name) for r in graph.task_roots}
    assert entries == {("a.mod:work", "map_task"),
                       ("a.mod:work", "map_configs")}
    assert all(r.node_id == "a/mod.py::work" for r in graph.task_roots)


# ------------------------------------------------------------------
# CLI integration.
# ------------------------------------------------------------------

def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "tools"), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-m", "reproflow", *args],
        capture_output=True, text=True, cwd=cwd or str(REPO), env=env)


def test_cli_fails_on_seeded_pur_violation(tmp_path):
    bad = tmp_path / "bad_task.py"
    bad.write_text(textwrap.dedent("""
        import random

        def noisy(seed, config=None):
            return random.random()

        def submit(runner, configs):
            return runner.map_task("bad_task:noisy", configs)
    """))
    result = run_cli(str(bad))
    assert result.returncode == 1
    assert "PUR103" in result.stdout


def test_cli_fails_on_seeded_flo_violation(tmp_path):
    bad = tmp_path / "leaky.py"
    bad.write_text(textwrap.dedent("""
        class RandomRouter:
            def __init__(self, seed=0):
                self.seed = seed
            def stream(self, name):
                return object()

        STREAM = RandomRouter(0).stream("module")
    """))
    result = run_cli(str(bad))
    assert result.returncode == 1
    assert "FLO002" in result.stdout


def test_cli_lists_pass3_rules():
    result = run_cli("--list-rules")
    for rule in ("FLO001", "FLO002", "FLO003", "PUR101", "PUR102",
                 "PUR103", "ORD201", "ORD202"):
        assert rule in result.stdout
