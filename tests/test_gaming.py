"""Tests for the cloud-gaming workload and frame-level scoring."""

import math

import numpy as np
import pytest

from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.packet import LinkTrace, merge_traces
from repro.sim import RandomRouter
from repro.traffic.gaming import (
    GameStreamProfile,
    packetize_game_stream,
    score_game_session,
    transmit_game_stream,
)

PROFILE = GameStreamProfile(duration_s=5.0)


def rng(seed=0):
    return RandomRouter(seed).stream("game")


def perfect_trace(stream, delay=0.005):
    n = stream.n_packets
    return LinkTrace("ok", stream.send_times,
                     np.ones(n, dtype=bool), np.full(n, delay))


# ------------------------------------------------------------ packetization

def test_packetize_counts():
    stream = packetize_game_stream(PROFILE, rng())
    assert stream.n_packets > PROFILE.n_frames        # multi-packet frames
    assert stream.frame_of_packet.max() == PROFILE.n_frames - 1
    assert np.all(np.diff(stream.send_times) >= 0)    # time ordered


def test_iframes_are_bigger():
    stream = packetize_game_stream(PROFILE, rng(1))
    counts = np.bincount(stream.frame_of_packet)
    i_frames = counts[::PROFILE.gop]
    p_frames = np.delete(counts, np.arange(0, len(counts), PROFILE.gop))
    assert i_frames.mean() > 2 * p_frames.mean()


def test_bitrate_plausible():
    stream = packetize_game_stream(PROFILE, rng(2))
    # ~8 KB * 60 fps ~= 4 Mbps plus I-frame overhead.
    assert 2e6 < stream.bitrate_bps < 12e6


def test_packets_within_frame_paced():
    stream = packetize_game_stream(PROFILE, rng(3))
    first_frame = stream.send_times[stream.frame_of_packet == 0]
    assert np.all(np.diff(first_frame) > 0)
    assert first_frame.max() < PROFILE.frame_interval_s


# ------------------------------------------------------------------ scoring

def test_perfect_trace_no_failures():
    stream = packetize_game_stream(PROFILE, rng(4))
    score = score_game_session(stream, perfect_trace(stream))
    assert score.failed_frames == 0
    assert score.stalls == []
    assert score.frame_failure_rate == 0.0


def test_single_lost_packet_fails_its_frame():
    stream = packetize_game_stream(PROFILE, rng(5))
    trace = perfect_trace(stream)
    victim = stream.n_packets // 2
    trace.delivered[victim] = False
    score = score_game_session(stream, trace)
    assert score.failed_frames == 1
    assert score.stalls == []          # single frame is a glitch, not stall


def test_late_packet_fails_frame():
    stream = packetize_game_stream(PROFILE, rng(6))
    trace = perfect_trace(stream, delay=0.005)
    trace.delays[0] = 0.500            # way past the 50 ms deadline
    score = score_game_session(stream, trace)
    assert score.failed_frames >= 1


def test_consecutive_failures_form_stall():
    stream = packetize_game_stream(PROFILE, rng(7))
    trace = perfect_trace(stream)
    # Kill every packet of frames 10..14.
    for f in range(10, 15):
        trace.delivered[stream.frame_of_packet == f] = False
    score = score_game_session(stream, trace)
    assert score.stalls == [5]
    assert score.longest_stall_ms == pytest.approx(5 * 1000 / 60.0)
    assert score.stalls_per_minute > 0


def test_trace_mismatch_rejected():
    stream = packetize_game_stream(PROFILE, rng(8))
    with pytest.raises(ValueError):
        score_game_session(stream, perfect_trace(
            packetize_game_stream(GameStreamProfile(duration_s=2.0),
                                  rng(9))))


# -------------------------------------------------------------- end to end

def game_link(seed, name="g"):
    config = LinkConfig(
        name=name, ap_position=Position(0, 0),
        gilbert=GilbertParams(mean_good_s=2.0, mean_bad_s=0.3,
                              loss_good=0.0, loss_bad=0.97),
        base_delay_s=0.004)
    return WifiLink(config, RandomRouter(seed),
                    mobility=StaticPosition(Position(9, 0)))


def test_cross_link_reduces_stalls_end_to_end():
    stream = packetize_game_stream(PROFILE, rng(10))
    trace_a = transmit_game_stream(stream, game_link(20, "a"))
    trace_b = transmit_game_stream(stream, game_link(21, "b"))
    single = score_game_session(stream, trace_a)
    hedged = score_game_session(stream, merge_traces([trace_a, trace_b]))
    assert hedged.failed_frames <= single.failed_frames
    assert hedged.frame_failure_rate <= single.frame_failure_rate
