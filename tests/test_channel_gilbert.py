"""Tests for the Gilbert–Elliott loss process."""

import numpy as np
import pytest

from repro.channel.gilbert import GilbertElliott, GilbertParams
from repro.sim import RandomRouter


def make_chain(seed=0, **kwargs):
    params = GilbertParams(**kwargs)
    rng = RandomRouter(seed).stream("ge")
    return GilbertElliott(params, rng)


def test_params_validation():
    with pytest.raises(ValueError):
        GilbertParams(mean_good_s=-1.0)
    with pytest.raises(ValueError):
        GilbertParams(loss_bad=1.5)


def test_stationary_fractions():
    params = GilbertParams(mean_good_s=9.0, mean_bad_s=1.0,
                           loss_good=0.0, loss_bad=1.0)
    assert params.stationary_bad_fraction == pytest.approx(0.1)
    assert params.stationary_loss_rate == pytest.approx(0.1)


def test_loss_probability_matches_state():
    chain = make_chain(loss_good=0.01, loss_bad=0.7)
    p = chain.loss_probability(0.0)
    assert p in (0.01, 0.7)


def test_backwards_query_raises():
    chain = make_chain()
    chain.state_at(5.0)
    with pytest.raises(ValueError):
        chain.state_at(1.0)


def test_long_run_bad_fraction_converges():
    params = GilbertParams(mean_good_s=1.0, mean_bad_s=0.25,
                           loss_good=0.0, loss_bad=1.0)
    rng = RandomRouter(1).stream("ge")
    chain = GilbertElliott(params, rng)
    times = np.arange(0, 2000.0, 0.05)
    states = chain.sample_states(times)
    observed = states.mean()
    assert observed == pytest.approx(params.stationary_bad_fraction,
                                     abs=0.03)


def test_burstiness_autocorrelation():
    """Consecutive samples inside a BAD sojourn must correlate."""
    params = GilbertParams(mean_good_s=2.0, mean_bad_s=0.2,
                           loss_good=0.0, loss_bad=1.0)
    rng = RandomRouter(2).stream("ge")
    chain = GilbertElliott(params, rng)
    times = np.arange(0, 5000.0, 0.02)
    states = chain.sample_states(times).astype(float)
    x = states - states.mean()
    lag1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
    # 20 ms lag inside a 200 ms mean BAD sojourn: strong correlation.
    assert lag1 > 0.5


def test_determinism():
    a = make_chain(seed=3)
    b = make_chain(seed=3)
    times = np.arange(0, 100.0, 0.02)
    assert np.array_equal(a.sample_states(times), b.sample_states(times))


def test_different_seeds_differ():
    times = np.arange(0, 200.0, 0.02)
    a = make_chain(seed=4).sample_states(times)
    b = make_chain(seed=5).sample_states(times)
    assert not np.array_equal(a, b)
