"""Tests for the wired-side substrate: WAN, LAN, SDN switch, middlebox."""

import numpy as np
import pytest

from repro.core.config import MiddleboxConfig
from repro.core.packet import Packet
from repro.net.lan import LanSegment
from repro.net.middlebox import Middlebox
from repro.net.sdn import FlowMatch, MatchAction, SdnSwitch
from repro.net.wan import WanPath, WanPathParams
from repro.sim import RandomRouter, Simulator


def rng(name="net", seed=0):
    return RandomRouter(seed).stream(name)


def packet(seq=0, flow="rt0"):
    return Packet(seq=seq, send_time=0.0, flow_id=flow)


# --------------------------------------------------------------------- WAN

def test_wan_delay_at_least_base():
    path = WanPath(WanPathParams(base_delay_s=0.040), rng())
    for _ in range(100):
        assert path.sample_delay() >= 0.040


def test_wan_loss_rate_statistical():
    path = WanPath(WanPathParams(loss_prob=0.10), rng(seed=1))
    losses = sum(path.sample_loss() for _ in range(5000))
    assert losses / 5000 == pytest.approx(0.10, abs=0.02)


def test_wan_overload_adds_tail():
    quiet = WanPath(WanPathParams(overload_prob=0.0), rng("a", 2))
    loaded = WanPath(WanPathParams(overload_prob=0.5,
                                   overload_delay_s=0.2), rng("b", 2))
    q = np.mean([quiet.sample_delay() for _ in range(500)])
    l = np.mean([loaded.sample_delay() for _ in range(500)])
    assert l > q + 0.05


def test_wan_event_mode_delivers():
    sim = Simulator()
    got = []
    path = WanPath(WanPathParams(base_delay_s=0.04, loss_prob=0.0),
                   rng(seed=3), sim=sim, sink=lambda p: got.append(sim.now))
    sim.call_at(0.0, path.send, packet())
    sim.run()
    assert got and got[0] >= 0.04
    assert path.forwarded == 1


def test_wan_event_mode_requires_wiring():
    path = WanPath(WanPathParams(), rng())
    with pytest.raises(RuntimeError):
        path.send(packet())


# --------------------------------------------------------------------- LAN

def test_lan_forwards_with_small_delay():
    sim = Simulator()
    got = []
    lan = LanSegment(sim, lambda p: got.append((p.seq, sim.now)),
                     rng(seed=4))
    sim.call_at(0.0, lan.send, packet(9))
    sim.run()
    assert got[0][0] == 9
    assert 0.0005 <= got[0][1] <= 0.0008


def test_lan_preserves_order():
    sim = Simulator()
    got = []
    lan = LanSegment(sim, lambda p: got.append(p.seq), rng(seed=5),
                     jitter_s=0.0)
    for i in range(5):
        sim.call_at(0.001 * i, lan.send, packet(i))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


# --------------------------------------------------------------------- SDN

def test_sdn_replicates_to_both_ports():
    sim = Simulator()
    out_a, out_b = [], []
    switch = SdnSwitch(sim)
    switch.attach_port("a", out_a.append)
    switch.attach_port("b", out_b.append)
    switch.install_rule(MatchAction(FlowMatch(flow_id="rt0"), ["a", "b"]))
    sim.call_at(0.0, switch.ingress, packet(1))
    sim.run()
    assert len(out_a) == 1 and len(out_b) == 1
    assert not out_a[0].is_duplicate
    assert out_b[0].is_duplicate


def test_sdn_rule_priority():
    sim = Simulator()
    hi, lo = [], []
    switch = SdnSwitch(sim)
    switch.attach_port("hi", hi.append)
    switch.attach_port("lo", lo.append)
    switch.install_rule(MatchAction(FlowMatch(), ["lo"], priority=1))
    switch.install_rule(MatchAction(FlowMatch(flow_id="rt0"), ["hi"],
                                    priority=10))
    sim.call_at(0.0, switch.ingress, packet(flow="rt0"))
    sim.call_at(0.0, switch.ingress, packet(flow="web"))
    sim.run()
    assert len(hi) == 1 and len(lo) == 1


def test_sdn_table_miss_counted():
    sim = Simulator()
    switch = SdnSwitch(sim)
    sim.call_at(0.0, switch.ingress, packet())
    sim.run()
    assert switch.table_misses == 1


def test_sdn_unknown_port_rejected():
    sim = Simulator()
    switch = SdnSwitch(sim)
    with pytest.raises(ValueError):
        switch.install_rule(MatchAction(FlowMatch(), ["ghost"]))


def test_sdn_rule_removal():
    sim = Simulator()
    switch = SdnSwitch(sim)
    switch.attach_port("a", lambda p: None)
    switch.install_rule(MatchAction(FlowMatch(flow_id="rt0"), ["a"]))
    assert switch.remove_rules_for("rt0") == 1
    sim.call_at(0.0, switch.ingress, packet())
    sim.run()
    assert switch.table_misses == 1


def test_sdn_match_counters():
    sim = Simulator()
    switch = SdnSwitch(sim)
    switch.attach_port("a", lambda p: None)
    rule = MatchAction(FlowMatch(flow_id="rt0"), ["a"])
    switch.install_rule(rule)
    for i in range(3):
        sim.call_at(0.0, switch.ingress, packet(i))
    sim.run()
    assert rule.packets_matched == 3


# --------------------------------------------------------------- middlebox

def make_middlebox(sim, depth=3):
    return Middlebox(sim, MiddleboxConfig(buffer_len=depth))


def test_middlebox_buffers_until_start():
    sim = Simulator()
    mbox = make_middlebox(sim)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(2):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    sim.run()
    assert got == []
    assert mbox.stats.buffered == 2


def test_middlebox_start_drains_buffer():
    sim = Simulator()
    mbox = make_middlebox(sim)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(2):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    sim.call_at(1.0, mbox.start, "rt0")
    sim.run()
    assert [p.seq for p in got] == [0, 1]


def test_middlebox_head_drop_on_overflow():
    sim = Simulator()
    mbox = make_middlebox(sim, depth=2)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(5):
        sim.call_at(0.001 * i, mbox.replica_arrival, packet(i))
    sim.call_at(1.0, mbox.start, "rt0")
    sim.run()
    assert [p.seq for p in got] == [3, 4]
    assert mbox.stats.buffer_drops == 3


def test_middlebox_streams_live_until_stop():
    sim = Simulator()
    mbox = make_middlebox(sim)
    got = []
    mbox.register_flow("rt0", got.append)
    sim.call_at(0.0, mbox.start, "rt0")
    sim.call_at(0.1, mbox.replica_arrival, packet(1))
    sim.call_at(0.2, mbox.stop, "rt0")
    sim.call_at(0.3, mbox.replica_arrival, packet(2))
    sim.run()
    assert [p.seq for p in got] == [1]       # live while streaming only
    assert mbox.stats.stop_messages == 1


def test_middlebox_unknown_flow_ignored_on_data_path():
    sim = Simulator()
    mbox = make_middlebox(sim)
    sim.call_at(0.0, mbox.replica_arrival, packet(flow="ghost"))
    sim.run()
    assert mbox.stats.buffered == 0


def test_middlebox_unknown_flow_control_raises():
    sim = Simulator()
    mbox = make_middlebox(sim)
    with pytest.raises(KeyError):
        mbox.start("ghost")


def test_middlebox_duplicate_registration_raises():
    sim = Simulator()
    mbox = make_middlebox(sim)
    mbox.register_flow("rt0", lambda p: None)
    with pytest.raises(ValueError):
        mbox.register_flow("rt0", lambda p: None)


def test_middlebox_service_delay_scales_with_load():
    sim = Simulator()
    mbox = make_middlebox(sim)
    mbox.register_flow("rt0", lambda p: None)
    base = mbox.service_delay_s()
    for i in range(999):
        mbox.register_flow(f"t{i}", lambda p: None)
    loaded = mbox.service_delay_s()
    # Section 6.4: ~+1.1 ms from 0 to 1000 streams.
    assert loaded - base == pytest.approx(0.0011, rel=0.05)


def test_middlebox_deregister_reduces_load():
    sim = Simulator()
    mbox = make_middlebox(sim)
    mbox.register_flow("rt0", lambda p: None)
    mbox.register_flow("rt1", lambda p: None)
    mbox.deregister_flow("rt1")
    assert mbox.registered_streams == 1


# ------------------------------------------- middlebox drain contract

def test_middlebox_stop_mid_drain_rebuffers_in_flight():
    # Regression: a stop arriving mid-drain used to let the forwards
    # still in flight fall on the floor uncounted; they must be put
    # back into the buffer so a later start can still deliver them.
    sim = Simulator()
    mbox = make_middlebox(sim)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(3):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    sim.call_at(1.0, mbox.start, "rt0")
    # The drain starts after the ~2.9 ms service delay and is spaced
    # 0.2 ms per packet: this stop lands between forwards #1 and #2.
    sim.call_at(1.0030, mbox.stop, "rt0")
    sim.call_at(2.0, mbox.start, "rt0")
    sim.run()
    assert [p.seq for p in got] == [0, 1, 2]    # nothing lost
    assert mbox.stats.rebuffered == 2
    assert mbox.stats.buffer_drops == 0


def test_middlebox_stop_rebuffer_head_drops_past_depth():
    # Re-buffered in-flight packets must respect the shallow buffer:
    # overflow is head-dropped and *counted*, never silent.
    sim = Simulator()
    mbox = make_middlebox(sim, depth=2)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(2):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    sim.call_at(1.0, mbox.start, "rt0")
    # A live replica joins the still-pending drain, then the stop
    # arrives before any forward fired: 3 packets into a depth-2 buffer.
    sim.call_at(1.0001, mbox.replica_arrival, packet(2))
    sim.call_at(1.0010, mbox.stop, "rt0")
    sim.call_at(2.0, mbox.start, "rt0")
    sim.run()
    assert [p.seq for p in got] == [1, 2]       # oldest head-dropped
    assert mbox.stats.rebuffered == 3
    assert mbox.stats.buffer_drops == 1


def test_middlebox_live_replicas_do_not_overtake_drain():
    # Regression: a live replica arriving while the drain was still
    # pending used to be forwarded immediately, overtaking the buffered
    # packets — the secondary AP saw 2, 0, 1.  Delivery must stay
    # sequence-monotone.
    sim = Simulator()
    mbox = make_middlebox(sim)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(2):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    sim.call_at(1.0, mbox.start, "rt0")
    sim.call_at(1.0001, mbox.replica_arrival, packet(2))
    # Long after the drain, live forwarding is immediate again.
    sim.call_at(1.5, mbox.replica_arrival, packet(3))
    sim.run()
    seqs = [p.seq for p in got]
    assert seqs == [0, 1, 2, 3]
    assert seqs == sorted(seqs)


def test_middlebox_default_config_not_shared():
    # Regression: the config default argument was a single shared
    # MiddleboxConfig instance aliased across every default-constructed
    # middlebox.
    sim = Simulator()
    assert Middlebox(sim).config is not Middlebox(sim).config


def test_middlebox_retrieve_leaves_unrequested_buffered():
    # Per-sequence retrieval forwards exactly what was asked for; the
    # rest stays buffered for a later start.
    sim = Simulator()
    mbox = make_middlebox(sim, depth=5)
    got = []
    mbox.register_flow("rt0", got.append)
    for i in range(4):
        sim.call_at(0.0, mbox.replica_arrival, packet(i))
    found = []
    sim.call_at(1.0, lambda: found.append(
        mbox.retrieve("rt0", [1, 3, 7])))
    sim.call_at(2.0, mbox.start, "rt0")
    sim.run()
    assert found == [2]                          # 7 was never buffered
    assert [p.seq for p in got] == [1, 3, 0, 2]
    assert mbox.stats.retrieve_messages == 1


# ------------------------------------------------- SDN switch coverage

def test_sdn_priority_tie_fifo_across_reinstalls():
    # Equal-priority rules resolve FIFO, and that order must track the
    # *latest* install sequence (the controller reinstalls rules on
    # every reroute).
    sim = Simulator()
    sw = SdnSwitch(sim)
    got = []
    sw.attach_port("a", lambda p: got.append("a"))
    sw.attach_port("b", lambda p: got.append("b"))

    def install(first, second):
        sw.remove_rules_for("rt0")
        sw.install_rule(MatchAction(FlowMatch(flow_id="rt0"),
                                    [first], priority=5))
        sw.install_rule(MatchAction(FlowMatch(flow_id="rt0"),
                                    [second], priority=5))

    install("a", "b")
    sim.call_at(0.0, sw.ingress, packet(0))
    sim.call_at(1.0, install, "b", "a")
    sim.call_at(2.0, sw.ingress, packet(1))
    sim.run()
    assert got == ["a", "b"]


def test_sdn_remove_rules_leaves_wildcard():
    # remove_rules_for is exact-match: the default (wildcard) rule that
    # carries all other traffic must survive a flow teardown.
    sim = Simulator()
    sw = SdnSwitch(sim)
    got = []
    sw.attach_port("client", got.append)
    sw.attach_port("mirror", lambda p: None)
    sw.install_rule(MatchAction(FlowMatch(flow_id="rt0"),
                                ["mirror"], priority=9))
    sw.install_rule(MatchAction(FlowMatch(), ["client"], priority=0))
    assert sw.remove_rules_for("rt0") == 1
    sim.call_at(0.0, sw.ingress, packet(0))
    sim.run()
    assert [p.seq for p in got] == [0]
    assert sw.table_misses == 0


def test_sdn_miss_counted_after_removal():
    # With the flow's rules gone and no wildcard, traffic becomes
    # counted table misses, not an error.
    sim = Simulator()
    sw = SdnSwitch(sim)
    sw.attach_port("client", lambda p: None)
    sw.install_rule(MatchAction(FlowMatch(flow_id="rt0"), ["client"]))
    sw.remove_rules_for("rt0")
    sim.call_at(0.0, sw.ingress, packet(0))
    sim.run()
    assert sw.table_misses == 1
