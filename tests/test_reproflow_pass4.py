"""Tests for reproflow pass 4 (``parsafe``): SER / IMP / KEY.

Each family gets triggering, clean, and suppressed fixtures; every rule
(SER301/302/303, IMP401/402, KEY501/502) gets targeted trigger and
clean cases, including the cross-module variants (worker-import
closure, module-state pokes); the granular effect propagation and the
synthetic ``<module>`` nodes are exercised directly; and the real CLI
is run over seeded violations.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import ast                                                    # noqa: E402

from reproflow.callgraph import build_callgraph               # noqa: E402
from reproflow.dataflow import propagate_effects              # noqa: E402
from reproflow.engine import analyze_source                   # noqa: E402
from reproflow.index import build_index                       # noqa: E402
from reproflow.parsafe import (                               # noqa: E402
    GRANULAR_KINDS,
    HANDLE_USE,
    SHADOW_CONFIG,
    collect_parsafe,
)
from reproflow.policy import DEFAULT_POLICY                   # noqa: E402


def analyze(source, path="pkg/module.py", rules=None, extra=None):
    return analyze_source(textwrap.dedent(source), path, rules=rules,
                          extra=extra)


def rule_ids(findings):
    return [f.rule for f in findings]


def graph_and_info(modules):
    """Build graph + parsafe info + summaries from ``{path: source}``."""
    sources = {p: textwrap.dedent(s) for p, s in modules.items()}
    trees = {p: ast.parse(s, filename=p) for p, s in sources.items()}
    graph = build_callgraph(trees, sources, build_index(trees))
    info = collect_parsafe(graph, trees)
    summaries = propagate_effects(graph, GRANULAR_KINDS)
    return graph, info, summaries


# ------------------------------------------------------------------
# Per-family fixtures: (trigger source, clean source, suppressed source).
# ------------------------------------------------------------------

FAMILY_FIXTURES = {
    "SER": (
        """
        def submit(runner, configs):
            return runner.map_task(lambda seed: seed, configs)
        """,
        """
        def doubling_task(seed, config=None):
            return seed * 2

        def submit(runner, configs):
            return runner.map_task("pkg.module:doubling_task", configs)
        """,
        """
        def submit(runner, configs):
            return runner.map_task(  # reproflow: disable=SER301
                lambda seed: seed, configs)
        """,
    ),
    "IMP": (
        """
        import time

        _IMPORT_STAMP = time.time()

        def stamped_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:stamped_task", configs)
        """,
        """
        import time

        def stamped_task(seed, config=None):
            return seed

        if __name__ == "__main__":
            print(time.time())

        def submit(runner, configs):
            return runner.map_task("pkg.module:stamped_task", configs)
        """,
        """
        import time

        _IMPORT_STAMP = time.time()  # reproflow: disable=IMP401

        def stamped_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:stamped_task", configs)
        """,
    ),
    "KEY": (
        """
        import os

        def env_task(seed, config=None):
            return os.getenv("REPRO_SCALE")

        def submit(runner, configs):
            return runner.map_task("pkg.module:env_task", configs)
        """,
        """
        def scaled_task(seed, scale=1.0, config=None):
            return seed * scale

        def submit(runner, configs):
            return runner.map_task("pkg.module:scaled_task", configs)
        """,
        """
        import os

        def env_task(seed, config=None):
            return os.getenv("REPRO_SCALE")

        def submit(runner, configs):
            return runner.map_task(  # reproflow: disable=KEY501
                "pkg.module:env_task", configs)
        """,
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_triggers(family):
    trigger, _, _ = FAMILY_FIXTURES[family]
    findings = analyze(trigger)
    assert any(r.startswith(family) for r in rule_ids(findings)), findings


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_clean(family):
    _, clean, _ = FAMILY_FIXTURES[family]
    findings = analyze(clean)
    assert not any(r.startswith(family) for r in rule_ids(findings)), findings


@pytest.mark.parametrize("family", sorted(FAMILY_FIXTURES))
def test_family_suppressed(family):
    _, _, suppressed = FAMILY_FIXTURES[family]
    findings = analyze(suppressed)
    assert not any(r.startswith(family) for r in rule_ids(findings)), findings


# ------------------------------------------------------------------
# SER301: statically unpicklable submissions.
# ------------------------------------------------------------------

def test_ser301_function_object():
    findings = analyze("""
        def local_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task(local_task, configs)
    """)
    ser = [f for f in findings if f.rule == "SER301"]
    assert ser and "function object 'local_task'" in ser[0].message


def test_ser301_bound_method():
    findings = analyze("""
        class Study:
            def run_one(self, seed):
                return seed

        def submit(runner, study, configs):
            return runner.map_task(study.run_one, configs)
    """)
    ser = [f for f in findings if f.rule == "SER301"]
    assert ser and "bound method" in ser[0].message


def test_ser301_locally_defined_function():
    findings = analyze("""
        def submit(runner, configs):
            def inner(seed):
                return seed
            return runner.map_task(inner, configs)
    """)
    ser = [f for f in findings if f.rule == "SER301"]
    assert ser and "locally-defined function" in ser[0].message


def test_ser301_dotted_entry_string():
    findings = analyze("""
        class Study:
            def run_one(self, seed):
                return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:Study.run_one", configs)
    """)
    ser = [f for f in findings if f.rule == "SER301"]
    assert ser and "dotted attribute" in ser[0].message


def test_ser301_runspec_build_is_a_site():
    findings = analyze("""
        def submit(RunSpec):
            return RunSpec.build(lambda seed: seed, 1)
    """)
    assert "SER301" in rule_ids(findings)


def test_ser301_task_keyword_argument():
    findings = analyze("""
        def submit(runner, configs):
            return runner.map_task(configs=configs,
                                   task=lambda seed: seed)
    """)
    assert "SER301" in rule_ids(findings)


def test_ser301_entry_constant_and_param_are_clean():
    # The executor's own idiom: a module constant holding the entry
    # string, and an internal helper forwarding a `task` parameter.
    findings = analyze("""
        TASK = "pkg.module:steady_task"

        def steady_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task(TASK, configs)

        def forward(runner, task, configs):
            return runner.map_configs(task, configs)
    """)
    assert "SER301" not in rule_ids(findings)


# ------------------------------------------------------------------
# SER302: stateful defaults on task functions.
# ------------------------------------------------------------------

def test_ser302_lock_default():
    findings = analyze("""
        from threading import Lock

        def guarded_task(seed, lock=Lock(), config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:guarded_task", configs)
    """)
    ser = [f for f in findings if f.rule == "SER302"]
    assert ser and "'lock'" in ser[0].message
    assert "Lock()" in ser[0].text


def test_ser302_rng_default():
    findings = analyze("""
        from numpy.random import default_rng

        def noisy_task(seed, *, rng=default_rng(0), config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:noisy_task", configs)
    """)
    assert "SER302" in rule_ids(findings)


def test_ser302_only_fires_for_runner_tasks():
    # The same default on a never-submitted function is not pass 4's
    # business (stage 1 owns generic mutable-default style).
    findings = analyze("""
        from threading import Lock

        def helper(seed, lock=Lock()):
            return seed
    """)
    assert "SER302" not in rule_ids(findings)


def test_ser302_immutable_defaults_are_clean():
    findings = analyze("""
        def steady_task(seed, scale=1.0, label="x", config=None):
            return seed * scale

        def submit(runner, configs):
            return runner.map_task("pkg.module:steady_task", configs)
    """)
    assert "SER302" not in rule_ids(findings)


# ------------------------------------------------------------------
# SER303: tasks capturing module-level handles.
# ------------------------------------------------------------------

def test_ser303_module_lock_used_by_task():
    findings = analyze("""
        from threading import Lock

        _GUARD = Lock()

        def locked_task(seed, config=None):
            with _GUARD:
                return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:locked_task", configs)
    """)
    ser = [f for f in findings if f.rule == "SER303"]
    assert ser and "_GUARD" in ser[0].message


def test_ser303_transitive_handle_use_shows_chain():
    findings = analyze("""
        from threading import Lock

        _GUARD = Lock()

        def _locked_helper(value):
            with _GUARD:
                return value

        def outer_task(seed, config=None):
            return _locked_helper(seed)

        def submit(runner, configs):
            return runner.map_task("pkg.module:outer_task", configs)
    """)
    ser = [f for f in findings if f.rule == "SER303"]
    assert ser and "_locked_helper" in ser[0].message


def test_ser303_lock_outside_tasks_is_clean():
    findings = analyze("""
        from threading import Lock

        _GUARD = Lock()

        def serve(request):
            with _GUARD:
                return request

        def pure_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:pure_task", configs)
    """)
    assert "SER303" not in rule_ids(findings)


# ------------------------------------------------------------------
# IMP401: import-time effects in worker-imported modules.
# ------------------------------------------------------------------

def test_imp401_transitive_effect_located_at_module_call():
    findings = analyze("""
        import random

        def _draw_pool():
            return [random.random() for _ in range(4)]

        _POOL = _draw_pool()

        def pooled_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:pooled_task", configs)
    """)
    imp = [f for f in findings if f.rule == "IMP401"]
    assert imp, findings
    assert "unrouted RNG" in imp[0].message
    assert "_POOL = _draw_pool()" in imp[0].text   # the module-scope call
    assert "task module pkg.module" in imp[0].message


def test_imp401_reaches_transitively_imported_modules():
    # The effect sits in a module the *task module* imports: the worker
    # executes it while resolving the entry, so it is flagged — in the
    # file that owns the effect, with the import chain in the message.
    helper = """
        import time

        _LOADED_AT = time.time()

        def helper(x):
            return x
    """
    taskmod = """
        import pkg.helper

        def chained_task(seed, config=None):
            return pkg.helper.helper(seed)

        def submit(runner, configs):
            return runner.map_task("pkg.taskmod:chained_task", configs)
    """
    findings = analyze(helper, path="pkg/helper.py",
                       extra={"pkg/taskmod.py": textwrap.dedent(taskmod)})
    imp = [f for f in findings if f.rule == "IMP401"]
    assert imp, findings
    assert "pkg.helper <- pkg.taskmod" in imp[0].message


def test_imp401_ignores_modules_no_worker_imports():
    findings = analyze("""
        import time

        _LOADED_AT = time.time()

        def helper(x):
            return x
    """)
    assert "IMP401" not in rule_ids(findings)


def test_imp401_main_guard_and_function_bodies_are_exempt():
    findings = analyze("""
        import time

        def timed_task(seed, config=None):
            return seed

        def probe():
            return time.time()

        if __name__ == "__main__":
            print(time.time())

        def submit(runner, configs):
            return runner.map_task("pkg.module:timed_task", configs)
    """)
    assert "IMP401" not in rule_ids(findings)


# ------------------------------------------------------------------
# IMP402: cross-process global reads.
# ------------------------------------------------------------------

def test_imp402_reader_of_task_mutated_global():
    findings = analyze("""
        TOTALS = {}

        def tally_task(seed, config=None):
            TOTALS[seed] = seed
            return seed

        def report():
            return len(TOTALS)

        def submit(runner, configs):
            return runner.map_task("pkg.module:tally_task", configs)
    """)
    imp = [f for f in findings if f.rule == "IMP402"]
    assert imp, findings
    assert "'report'" in imp[0].message and "TOTALS" in imp[0].message


def test_imp402_reader_inside_task_closure_is_clean():
    # The task itself (and its helpers) read the global they mutate in
    # the same process — coherent, and already PUR101's business.
    findings = analyze("""
        TOTALS = {}

        def tally_task(seed, config=None):
            TOTALS[seed] = seed
            return len(TOTALS)

        def submit(runner, configs):
            return runner.map_task("pkg.module:tally_task", configs)
    """)
    assert "IMP402" not in rule_ids(findings)


def test_imp402_unrelated_global_reader_is_clean():
    findings = analyze("""
        TOTALS = {}
        LIMITS = {"max": 10}

        def tally_task(seed, config=None):
            TOTALS[seed] = seed
            return seed

        def check():
            return LIMITS["max"]

        def submit(runner, configs):
            return runner.map_task("pkg.module:tally_task", configs)
    """)
    assert "IMP402" not in rule_ids(findings)


# ------------------------------------------------------------------
# KEY501: cache-key escapes.
# ------------------------------------------------------------------

def test_key501_environ_subscript_and_get():
    for read in ('os.environ["REPRO_SCALE"]',
                 'os.environ.get("REPRO_SCALE")',
                 'os.getenv("REPRO_SCALE")'):
        findings = analyze(f"""
            import os

            def env_task(seed, config=None):
                return {read}

            def submit(runner, configs):
                return runner.map_task("pkg.module:env_task", configs)
        """)
        key = [f for f in findings if f.rule == "KEY501"]
        assert key, (read, findings)
        assert "REPRO_SCALE" in key[0].message


def test_key501_sanctioned_sanitizer_var_is_clean():
    findings = analyze("""
        import os

        def checked_task(seed, config=None):
            if os.environ.get("REPRO_SANITIZE"):
                assert seed >= 0
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:checked_task", configs)
    """)
    assert "KEY501" not in rule_ids(findings)


def test_key501_file_read_in_task():
    findings = analyze("""
        def loading_task(seed, config=None):
            with open("calibration.json") as handle:
                return handle.read()

        def submit(runner, configs):
            return runner.map_task("pkg.module:loading_task", configs)
    """)
    key = [f for f in findings if f.rule == "KEY501"]
    assert key and "calibration.json" in key[0].message


def test_key501_write_only_open_is_clean():
    findings = analyze("""
        def logging_task(seed, config=None):
            with open("out.log", "w") as handle:
                handle.write(str(seed))
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:logging_task", configs)
    """)
    assert "KEY501" not in rule_ids(findings)


def test_key501_shadow_config_fallback_transitive():
    # The provider.py shape this rule was built for: a task-reachable
    # helper whose parameter falls back to a module global at call time.
    findings = analyze("""
        KNOB = 0.5

        def synthesize(n, scale=None):
            scale = KNOB if scale is None else scale
            return n * scale

        def knob_task(seed, config=None):
            return synthesize(seed)

        def submit(runner, configs):
            return runner.map_task("pkg.module:knob_task", configs)
    """)
    key = [f for f in findings if f.rule == "KEY501"]
    assert key, findings
    assert "'scale'" in key[0].message and "KNOB" in key[0].message
    assert "via knob_task -> synthesize" in key[0].message


def test_key501_shadow_config_if_statement_form():
    findings = analyze("""
        KNOB = 0.5

        def knob_task(seed, scale=None, config=None):
            if scale is None:
                scale = KNOB
            return seed * scale

        def submit(runner, configs):
            return runner.map_task("pkg.module:knob_task", configs)
    """)
    assert "KEY501" in rule_ids(findings)


def test_key501_shadow_config_or_form():
    findings = analyze("""
        KNOB = 0.5

        def knob_task(seed, scale=None, config=None):
            scale = scale or KNOB
            return seed * scale

        def submit(runner, configs):
            return runner.map_task("pkg.module:knob_task", configs)
    """)
    assert "KEY501" in rule_ids(findings)


def test_key501_def_time_default_is_sound():
    # The fixed provider.py shape: the knob bound as a signature
    # default is source text, which the code fingerprint covers.
    findings = analyze("""
        KNOB = 0.5

        def knob_task(seed, scale=KNOB, config=None):
            return seed * scale

        def submit(runner, configs):
            return runner.map_task("pkg.module:knob_task", configs)
    """)
    assert "KEY501" not in rule_ids(findings)


def test_key501_module_state_poked_from_another_module():
    tuner = """
        from pkg import module

        def retune():
            module.KNOB = 2.0
    """
    findings = analyze("""
        KNOB = 0.5

        def knob_task(seed, config=None):
            return seed * KNOB

        def submit(runner, configs):
            return runner.map_task("pkg.module:knob_task", configs)
    """, extra={"pkg/tuner.py": textwrap.dedent(tuner)})
    key = [f for f in findings if f.rule == "KEY501"]
    assert key, findings
    assert "KNOB" in key[0].message
    assert "another module rebinds" in key[0].message


def test_key501_unpoked_module_constant_is_clean():
    findings = analyze("""
        KNOB = 0.5

        def knob_task(seed, config=None):
            return seed * KNOB

        def submit(runner, configs):
            return runner.map_task("pkg.module:knob_task", configs)
    """)
    assert "KEY501" not in rule_ids(findings)


# ------------------------------------------------------------------
# KEY502: dynamic dispatch escaping the code fingerprint.
# ------------------------------------------------------------------

def test_key502_import_module_with_runtime_name():
    findings = analyze("""
        import importlib

        def plugin_task(seed, config=None):
            impl = importlib.import_module(config["impl"])
            return impl.run(seed)

        def submit(runner, configs):
            return runner.map_task("pkg.module:plugin_task", configs)
    """)
    key = [f for f in findings if f.rule == "KEY502"]
    assert key and "runtime value" in key[0].message


def test_key502_getattr_and_globals_lookup():
    for dispatch in ("getattr(mod, config['name'])(seed)",
                     "globals()[config['name']](seed)"):
        findings = analyze(f"""
            import pkg.other as mod

            def dyn_task(seed, config=None):
                return {dispatch}

            def submit(runner, configs):
                return runner.map_task("pkg.module:dyn_task", configs)
        """)
        assert "KEY502" in rule_ids(findings), dispatch


def test_key502_constant_dispatch_is_clean():
    findings = analyze("""
        import importlib

        def fixed_task(seed, config=None):
            impl = importlib.import_module("pkg.fixed")
            handler = getattr(impl, "run")
            return handler(seed)

        def submit(runner, configs):
            return runner.map_task("pkg.module:fixed_task", configs)
    """)
    assert "KEY502" not in rule_ids(findings)


def test_key502_dynamic_dispatch_outside_tasks_is_clean():
    findings = analyze("""
        def loader(name):
            return globals()[name]

        def pure_task(seed, config=None):
            return seed

        def submit(runner, configs):
            return runner.map_task("pkg.module:pure_task", configs)
    """)
    assert "KEY502" not in rule_ids(findings)


# ------------------------------------------------------------------
# Plumbing: granular propagation and the synthetic <module> nodes.
# ------------------------------------------------------------------

def test_granular_summary_keys_keep_plain_kind():
    _, _, summaries = graph_and_info({"a/mod.py": """
        from threading import Lock

        _A = Lock()
        _B = Lock()

        def both(x):
            with _A:
                with _B:
                    return x
    """})
    summary = summaries["a/mod.py::both"]
    assert HANDLE_USE in summary                       # pass-3 style key
    assert f"{HANDLE_USE}:_A" in summary               # per-symbol keys
    assert f"{HANDLE_USE}:_B" in summary


def test_module_node_excludes_defs_and_main_guard():
    graph, _, summaries = graph_and_info({"a/mod.py": """
        import time

        def f():
            return time.time()

        if __name__ == "__main__":
            print(time.time())

        CONST = 1
    """})
    module_id = graph.module_nodes["a/mod.py"]
    assert "clock-read" not in summaries.get(module_id, {})


def test_worker_module_closure_includes_imports():
    _, info, _ = graph_and_info({
        "pkg/helper.py": "def helper(x):\n    return x\n",
        "pkg/taskmod.py": """
            import pkg.helper

            def work(seed):
                return pkg.helper.helper(seed)

            def submit(runner, configs):
                return runner.map_task("pkg.taskmod:work", configs)
        """,
        "pkg/unrelated.py": "def other(x):\n    return x\n",
    })
    assert "pkg/taskmod.py" in info.worker_modules
    assert "pkg/helper.py" in info.worker_modules
    assert "pkg/unrelated.py" not in info.worker_modules
    assert info.import_parent["pkg/helper.py"] == "pkg/taskmod.py"


def test_shadow_config_effect_records_param_and_knob():
    graph, _, _ = graph_and_info({"a/mod.py": """
        KNOB = 2

        def f(x=None):
            x = KNOB if x is None else x
            return x
    """})
    effects = [e for e in graph.nodes["a/mod.py::f"].effects
               if e.kind == SHADOW_CONFIG]
    assert [e.symbol for e in effects] == ["x<-KNOB"]


def test_pass4_rules_have_no_policy_exemptions():
    for rule in ("SER301", "SER302", "SER303", "IMP401", "IMP402",
                 "KEY501", "KEY502"):
        for path in ("src/repro/studies/provider.py",
                     "src/repro/runner/executor.py",
                     "tests/test_runner.py", "tools/reproflow/cli.py"):
            assert not DEFAULT_POLICY.exempt(path, rule)


# ------------------------------------------------------------------
# CLI integration.
# ------------------------------------------------------------------

def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "tools"), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-m", "reproflow", *args],
        capture_output=True, text=True, cwd=cwd or str(REPO), env=env)


def test_cli_fails_on_seeded_pass4_violations(tmp_path):
    bad = tmp_path / "bad_parallel.py"
    bad.write_text(textwrap.dedent("""
        import os

        def env_task(seed, config=None):
            return os.getenv("SCALE")

        def submit(runner, configs):
            runner.map_task("bad_parallel:env_task", configs)
            runner.map_configs(lambda s: s, configs)
    """))
    result = run_cli(str(bad))
    assert result.returncode == 1
    assert "KEY501" in result.stdout
    assert "SER301" in result.stdout


def test_cli_lists_pass4_rules():
    result = run_cli("--list-rules")
    for rule in ("SER301", "SER302", "SER303", "IMP401", "IMP402",
                 "KEY501", "KEY502"):
        assert rule in result.stdout
