"""Unit tests for named random streams."""

import numpy as np

from repro.sim import RandomRouter


def test_same_seed_same_name_same_sequence():
    a = RandomRouter(seed=7).stream("linkA")
    b = RandomRouter(seed=7).stream("linkA")
    assert np.array_equal(a.random(100), b.random(100))


def test_different_names_give_different_sequences():
    router = RandomRouter(seed=7)
    a = router.stream("linkA").random(100)
    b = router.stream("linkB").random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_sequences():
    a = RandomRouter(seed=1).stream("x").random(100)
    b = RandomRouter(seed=2).stream("x").random(100)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_continues():
    router = RandomRouter(seed=3)
    first = router.stream("s").random(10)
    second = router.stream("s").random(10)
    # Continuation, not a restart.
    fresh = RandomRouter(seed=3).stream("s").random(20)
    assert np.array_equal(np.concatenate([first, second]), fresh)


def test_consuming_one_stream_does_not_shift_another():
    router = RandomRouter(seed=11)
    router.stream("noisy").random(1000)
    quiet = router.stream("quiet").random(50)
    reference = RandomRouter(seed=11).stream("quiet").random(50)
    assert np.array_equal(quiet, reference)


def test_fork_is_deterministic_and_disjoint():
    router = RandomRouter(seed=5)
    f1 = router.fork("run-1")
    f2 = router.fork("run-2")
    again = RandomRouter(seed=5).fork("run-1")
    assert np.array_equal(f1.stream("x").random(20), again.stream("x").random(20))
    assert not np.array_equal(f1.stream("x").random(20), f2.stream("x").random(20))


def test_streams_created_lists_names():
    router = RandomRouter(seed=0)
    router.stream("a")
    router.stream("b")
    assert set(router.streams_created()) == {"a", "b"}
