"""Unit tests for named random streams."""

import numpy as np
import pytest

from repro.sim import RandomRouter, StreamSharingError


def test_same_seed_same_name_same_sequence():
    a = RandomRouter(seed=7).stream("linkA")
    b = RandomRouter(seed=7).stream("linkA")
    assert np.array_equal(a.random(100), b.random(100))


def test_different_names_give_different_sequences():
    router = RandomRouter(seed=7)
    a = router.stream("linkA").random(100)
    b = router.stream("linkB").random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_sequences():
    a = RandomRouter(seed=1).stream("x").random(100)
    b = RandomRouter(seed=2).stream("x").random(100)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_continues(monkeypatch):
    # Plain caching semantics; the sanitizer's ownership rules are
    # exercised separately below.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    router = RandomRouter(seed=3)
    first = router.stream("s").random(10)
    second = router.stream("s").random(10)
    # Continuation, not a restart.
    fresh = RandomRouter(seed=3).stream("s").random(20)
    assert np.array_equal(np.concatenate([first, second]), fresh)


def test_consuming_one_stream_does_not_shift_another():
    router = RandomRouter(seed=11)
    router.stream("noisy").random(1000)
    quiet = router.stream("quiet").random(50)
    reference = RandomRouter(seed=11).stream("quiet").random(50)
    assert np.array_equal(quiet, reference)


def test_fork_is_deterministic_and_disjoint(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    router = RandomRouter(seed=5)
    f1 = router.fork("run-1")
    f2 = router.fork("run-2")
    again = RandomRouter(seed=5).fork("run-1")
    assert np.array_equal(f1.stream("x").random(20), again.stream("x").random(20))
    assert not np.array_equal(f1.stream("x").random(20), f2.stream("x").random(20))


def test_streams_created_lists_names():
    router = RandomRouter(seed=0)
    router.stream("a")
    router.stream("b")
    assert set(router.streams_created()) == {"a", "b"}


# ---------------------------------------------------- sanitizer (REPRO_SANITIZE)

def _component_a(router):
    return router.stream("shared.name")


def _component_b(router):
    return router.stream("shared.name")


def test_shared_stream_name_raises_under_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    router = RandomRouter(seed=0)
    _component_a(router)
    with pytest.raises(StreamSharingError):
        _component_b(router)


def test_same_call_site_may_refetch_its_stream(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    router = RandomRouter(seed=0)
    draws = []
    for _ in range(3):
        # One component polling its own stream in a loop is one call site.
        draws.append(float(router.stream("poller").random()))
    assert len(set(draws)) == 3   # the stream continues, no restart


def test_shared_stream_name_tolerated_without_sanitizer(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    router = RandomRouter(seed=0)
    assert _component_a(router) is _component_b(router)


def test_fork_gets_fresh_ownership(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    router = RandomRouter(seed=0)
    _component_a(router)
    # Forked routers are disjoint universes: the same component layout
    # claims the same names again without conflict.
    _component_a(router.fork("run-2"))


def test_sanitizer_does_not_change_stream_values(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = RandomRouter(seed=9).stream("values").random(50)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = RandomRouter(seed=9).stream("values").random(50)
    assert np.array_equal(plain, sanitized)
