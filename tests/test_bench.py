"""Tests for the benchmark harness (``repro.bench``) and the committed
``BENCH_runner.json`` artifact's schema."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BenchEntry,
    DEFAULT_MATRIX,
    SCHEMA,
    run_bench,
    write_bench,
)

REPO = Path(__file__).resolve().parent.parent

#: a matrix of only the cheap micro-benchmarks, so the test stays fast
FAST_MATRIX = (
    BenchEntry("net_switch",
               "repro.experiments.section6:switch_delay_metrics", 2),
)

PHASE_KEYS = {"sessions", "wall_s", "sessions_per_s", "executed",
              "cache_hits", "digest"}


def _validate(payload):
    assert payload["schema"] == SCHEMA
    assert isinstance(payload["matrix"], dict) and payload["matrix"]
    assert set(payload["matrix"]) == set(payload["subsystems"])
    for name, result in payload["subsystems"].items():
        assert ":" in result["task"]
        for phase in ("cache_cold", "cache_warm"):
            stats = result[phase]
            assert PHASE_KEYS <= set(stats), (name, phase)
            assert stats["sessions"] >= 1
            assert stats["wall_s"] >= 0.0
            assert stats["sessions_per_s"] is None \
                or stats["sessions_per_s"] > 0.0
    assert "metrics" in payload["spans"]


def test_run_bench_fast_matrix():
    payload = run_bench(matrix=FAST_MATRIX)
    _validate(payload)
    result = payload["subsystems"]["net_switch"]
    # cold pass executes everything; warm pass hits the cache for
    # everything, with the identical batch digest
    assert result["cache_cold"]["executed"] == 2
    assert result["cache_warm"]["cache_hits"] == 2
    assert result["cache_warm"]["executed"] == 0
    assert result["cache_cold"]["digest"] == result["cache_warm"]["digest"]


def test_write_bench_round_trips(tmp_path):
    out = tmp_path / "BENCH_runner.json"
    write_bench(out, matrix=FAST_MATRIX)
    payload = json.loads(out.read_text())
    _validate(payload)


def test_scale_shrinks_but_never_empties():
    scaled = run_bench(matrix=FAST_MATRIX, scale=0.01)
    assert scaled["matrix"]["net_switch"] == 1


def test_default_matrix_covers_subsystems():
    names = {e.name for e in DEFAULT_MATRIX}
    assert {"wifi_session", "wifi_tcp", "net_switch",
            "net_middlebox"} <= names


def test_committed_artifact_is_valid():
    committed = REPO / "BENCH_runner.json"
    assert committed.exists(), "run `make bench` and commit the result"
    _validate(json.loads(committed.read_text()))
