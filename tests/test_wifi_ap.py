"""Tests for the access-point model: PSM buffering, drop policies,
hardware-queue behaviour."""

import pytest

from repro.core.config import APConfig
from repro.core.packet import Packet
from repro.sim import Simulator


class PerfectLink:
    """A link that always delivers instantly (isolates queue mechanics)."""

    name = "perfect"

    def __init__(self, delay=0.001):
        self.delay = delay
        self.transmits = []

    def transmit(self, seq, send_time, size_bytes=160):
        from repro.core.packet import DeliveryRecord
        self.transmits.append((seq, send_time))
        return DeliveryRecord(seq=seq, send_time=send_time, delivered=True,
                              arrival_time=send_time + self.delay)


class DeadLink(PerfectLink):
    """A link that never delivers."""

    def transmit(self, seq, send_time, size_bytes=160):
        from repro.core.packet import DeliveryRecord
        self.transmits.append((seq, send_time))
        return DeliveryRecord(seq=seq, send_time=send_time, delivered=False)


def make_ap(sim, policy="head", qlen=5, batch=1, link=None, redeliver=0):
    from repro.wifi.ap import AccessPoint
    config = APConfig(drop_policy=policy, max_queue_len=qlen,
                      hardware_queue_batch=batch,
                      psm_redelivery_attempts=redeliver)
    return AccessPoint(sim, "ap", link or PerfectLink(), config)


def packet(seq):
    return Packet(seq=seq, send_time=0.0, size_bytes=160)


def test_awake_client_receives_immediately():
    sim = Simulator()
    ap = make_ap(sim)
    got = []
    ap.set_receiver(lambda p, t, name: got.append((p.seq, t)))
    sim.call_at(0.0, ap.wired_arrival, packet(0))
    sim.run()
    assert [seq for seq, _ in got] == [0]


def test_sleeping_client_packets_buffered():
    sim = Simulator()
    ap = make_ap(sim)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    ap.client_sleep()
    for i in range(3):
        sim.call_at(0.01 * i, ap.wired_arrival, packet(i))
    sim.run()
    assert got == []
    assert ap.psm_queue_len == 3


def test_wake_drains_buffer_in_order():
    sim = Simulator()
    ap = make_ap(sim)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    ap.client_sleep()
    for i in range(3):
        sim.call_at(0.0, ap.wired_arrival, packet(i))
    sim.call_at(1.0, ap.client_wake)
    sim.run()
    assert got == [0, 1, 2]


def test_head_drop_keeps_most_recent():
    sim = Simulator()
    ap = make_ap(sim, policy="head", qlen=3)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    ap.client_sleep()
    for i in range(6):
        sim.call_at(0.01 * i, ap.wired_arrival, packet(i))
    sim.call_at(1.0, ap.client_wake)
    sim.run()
    assert got == [3, 4, 5]
    assert ap.stats.buffer_drops == 3


def test_tail_drop_keeps_oldest():
    sim = Simulator()
    ap = make_ap(sim, policy="tail", qlen=3)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    ap.client_sleep()
    for i in range(6):
        sim.call_at(0.01 * i, ap.wired_arrival, packet(i))
    sim.call_at(1.0, ap.client_wake)
    sim.run()
    assert got == [0, 1, 2]
    assert ap.stats.buffer_drops == 3


def test_unknown_drop_policy_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        make_ap(sim, policy="random")


def test_arrivals_while_awake_go_to_hardware_queue():
    """Packets arriving during a wake period bypass the PSM buffer."""
    sim = Simulator()
    ap = make_ap(sim)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    ap.client_sleep()
    sim.call_at(0.0, ap.wired_arrival, packet(0))
    sim.call_at(0.5, ap.client_wake)
    sim.call_at(0.6, ap.wired_arrival, packet(1))
    sim.run()
    assert got == [0, 1]
    assert ap.stats.buffered == 1


def test_absent_client_transmissions_counted_not_delivered():
    """A packet committed to hardware is transmitted even if the client
    has switched away — the paper's wasteful-duplication mechanism."""
    sim = Simulator()
    link = PerfectLink()
    ap = make_ap(sim, link=link)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    sim.call_at(0.0, ap.wired_arrival, packet(0))
    # Client leaves the channel immediately; the frame is already queued.
    sim.call_at(0.0, ap.client_absent, True)
    sim.run()
    assert got == []
    assert ap.stats.air_transmissions == 1
    assert ap.stats.absent_transmissions == 1


def test_failed_transmission_not_delivered():
    sim = Simulator()
    ap = make_ap(sim, link=DeadLink())
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    sim.call_at(0.0, ap.wired_arrival, packet(0))
    sim.run()
    assert got == []
    assert ap.stats.air_transmissions == 1
    assert ap.stats.delivered == 0


def test_redelivery_retries_failed_frames():
    sim = Simulator()
    link = DeadLink()
    ap = make_ap(sim, link=link, redeliver=2)
    ap.set_receiver(lambda p, t, name: None)
    sim.call_at(0.0, ap.wired_arrival, packet(0))
    sim.run()
    assert ap.stats.air_transmissions == 3  # initial + 2 retries


def test_per_seq_transmission_counter():
    sim = Simulator()
    ap = make_ap(sim)
    ap.set_receiver(lambda p, t, name: None)
    sim.call_at(0.0, ap.wired_arrival, packet(7))
    sim.call_at(0.1, ap.wired_arrival, packet(7))
    sim.run()
    assert ap.stats.per_seq_transmissions[7] == 2


def test_service_serializes_transmissions():
    """Two packets must be served back to back, not in parallel."""
    sim = Simulator()
    link = PerfectLink(delay=0.002)
    ap = make_ap(sim, link=link)
    times = []
    ap.set_receiver(lambda p, t, name: times.append(t))
    sim.call_at(0.0, ap.wired_arrival, packet(0))
    sim.call_at(0.0, ap.wired_arrival, packet(1))
    sim.run()
    assert len(times) == 2
    assert times[1] >= times[0] + 0.0015  # at least one service time apart


def test_hardware_batch_limits_initial_handdown():
    """With batch=2, waking with 5 buffered packets hands down 2 first;
    the remainder follow as the hardware queue drains (client awake)."""
    sim = Simulator()
    ap = make_ap(sim, batch=2)
    got = []
    ap.set_receiver(lambda p, t, name: got.append(p.seq))
    ap.client_sleep()
    for i in range(5):
        sim.call_at(0.0, ap.wired_arrival, packet(i))
    sim.call_at(1.0, ap.client_wake)
    sim.run()
    assert got == [0, 1, 2, 3, 4]  # all eventually delivered while awake
