"""Small-scale integration tests of the paper's headline claims.

The benchmarks assert these shapes at evaluation scale; the versions here
run in seconds as part of the regular test suite, guarding the claims
against regressions between benchmark runs.  Each test names the claim
it protects.
"""

import numpy as np
import pytest

from repro.analysis.summary import permutation_pvalue
from repro.analysis.windows import worst_window_loss
from repro.core import strategies
from repro.core.config import StreamProfile
from repro.core.controller import run_session
from repro.scenarios import build_office_pair, generate_wild_runs

PROFILE = StreamProfile(duration_s=30.0)   # 1500 packets per call
N_WILD = 14
N_OFFICE = 8


@pytest.fixture(scope="module")
def wild_runs():
    return generate_wild_runs(N_WILD, PROFILE, seed=42,
                              temporal_deltas=(0.1,))


def worst(trace):
    return worst_window_loss(trace)


# ------------------------------------------------------ Section 4 claims

def test_claim_crosslink_beats_selection(wild_runs):
    """'Cross-link dominates both selection strategies' (Fig 2a)."""
    cross = [worst(strategies.cross_link(r)) for r in wild_runs]
    strong = [worst(strategies.stronger(r)) for r in wild_runs]
    assert np.mean(cross) < np.mean(strong)
    # Paired significance: same channel realizations.
    assert permutation_pvalue(cross, strong) < 0.05


def test_claim_crosslink_beats_divert(wild_runs):
    """'Divert only helps future packets' (Fig 2b)."""
    cross = [worst(strategies.cross_link(r)) for r in wild_runs]
    div = [worst(strategies.divert(r)) for r in wild_runs]
    assert np.mean(cross) <= np.mean(div) + 1e-9


def test_claim_crosslink_beats_temporal(wild_runs):
    """'Cross-link dominates temporal replication' (Fig 2c)."""
    cross = [worst(strategies.cross_link(r)) for r in wild_runs]
    temporal = [worst(strategies.temporal(r, 0.1)) for r in wild_runs]
    assert np.mean(cross) <= np.mean(temporal) + 1e-9


def test_claim_temporal_beats_baseline(wild_runs):
    """'Temporal replication does improve on no replication' (Fig 2c)."""
    temporal = [worst(strategies.temporal(r, 0.1)) for r in wild_runs]
    base = [worst(strategies.baseline(r)) for r in wild_runs]
    assert np.mean(temporal) <= np.mean(base) + 1e-9


def test_claim_autocorrelation_dominates_cross(wild_runs):
    """'Within-link loss correlation exceeds cross-link' (Fig 4)."""
    from repro.analysis.correlation import mean_correlation_series
    pairs = [(r.trace_a, r.trace_b) for r in wild_runs]
    auto = mean_correlation_series(pairs, max_lag=10)
    cross = mean_correlation_series(pairs, max_lag=10, cross=True)
    assert np.mean(auto) > np.mean(cross)


# ------------------------------------------------------ Section 6 claims

@pytest.fixture(scope="module")
def office_results():
    out = {"primary-only": [], "diversifi-ap": []}
    for seed in range(N_OFFICE):
        for mode in out:
            out[mode].append(run_session(
                build_office_pair, mode=mode, profile=PROFILE, seed=seed))
    return out


def test_claim_diversifi_cuts_loss(office_results):
    """'A reduction in PCR from 4.9% down to 0%' — at test scale, a
    large drop in residual loss (Fig 8)."""
    base = np.mean([r.effective_trace().loss_rate
                    for r in office_results["primary-only"]])
    div = np.mean([r.effective_trace().loss_rate
                   for r in office_results["diversifi-ap"]])
    if base > 0.001:
        assert div < base / 2.0


def test_claim_duplication_tiny(office_results):
    """'Duplicating wastefully only 0.62% of the packets' (§6.3)."""
    waste = np.mean([r.wasteful_duplication_rate()
                     for r in office_results["diversifi-ap"]])
    assert waste < 0.03      # orders below naive 100%


def test_claim_bursts_suppressed(office_results):
    """'Only 0.9 of 2.7 lost packets in bursts' vs 35.9/44.3 (Fig 9)."""
    from repro.analysis.bursts import burst_stats
    base = burst_stats([r.effective_trace()
                        for r in office_results["primary-only"]])
    div = burst_stats([r.effective_trace()
                       for r in office_results["diversifi-ap"]])
    if base.mean_lost_in_bursts > 1.0:
        assert div.mean_lost_in_bursts < base.mean_lost_in_bursts


def test_claim_off_channel_time_small(office_results):
    """'Coexistence': the NIC leaves DEF for well under 1% of the call."""
    for result in office_results["diversifi-ap"]:
        assert result.off_channel_time_s < 0.01 * PROFILE.duration_s


def test_claim_secondary_transmissions_bounded(office_results):
    """Network-side buffering means air duplication ~ losses, not ~ the
    stream ('benefit of replication without the overhead')."""
    for result in office_results["diversifi-ap"]:
        assert (result.secondary_air_transmissions
                < 0.1 * PROFILE.n_packets)
