"""Tests for the statistics helpers and the DCF medium model."""

import numpy as np
import pytest

from repro.analysis.summary import (
    Interval,
    bootstrap_interval,
    improvement_factor_interval,
    paired_difference_interval,
    permutation_pvalue,
)
from repro.sim import RandomRouter, Simulator
from repro.wifi.dcf import DcfMedium


# ------------------------------------------------------------- statistics

def test_bootstrap_interval_covers_mean():
    rng = np.random.default_rng(0)
    samples = rng.normal(10.0, 2.0, size=200)
    interval = bootstrap_interval(samples)
    assert interval.contains(10.0)
    assert interval.low < interval.point < interval.high


def test_bootstrap_interval_narrows_with_n():
    rng = np.random.default_rng(1)
    small = bootstrap_interval(rng.normal(0, 1, 20), seed=1)
    large = bootstrap_interval(rng.normal(0, 1, 2000), seed=1)
    assert (large.high - large.low) < (small.high - small.low)


def test_bootstrap_validates_inputs():
    with pytest.raises(ValueError):
        bootstrap_interval([])
    with pytest.raises(ValueError):
        bootstrap_interval([1.0], confidence=1.5)


def test_paired_difference_detects_shift():
    rng = np.random.default_rng(2)
    base = rng.normal(5.0, 1.0, size=100)
    shifted = base + 0.5
    interval = paired_difference_interval(shifted, base)
    assert interval.low > 0.3
    assert interval.contains(0.5)


def test_paired_difference_length_mismatch():
    with pytest.raises(ValueError):
        paired_difference_interval([1.0, 2.0], [1.0])


def test_permutation_pvalue_significant():
    rng = np.random.default_rng(3)
    b = rng.normal(5.0, 1.0, size=60)
    a = b - 1.0                      # A clearly lower
    assert permutation_pvalue(a, b) < 0.01


def test_permutation_pvalue_null():
    rng = np.random.default_rng(4)
    b = rng.normal(5.0, 1.0, size=60)
    a = b + rng.normal(0.0, 0.01, size=60)
    assert permutation_pvalue(a, b) > 0.05


def test_improvement_factor_matches_ratio():
    base = [10.0] * 50
    treat = [5.0] * 50
    interval = improvement_factor_interval(base, treat)
    assert interval.point == pytest.approx(2.0)
    assert interval.contains(2.0)


def test_interval_str():
    s = str(Interval(1.0, 0.5, 1.5, 0.95))
    assert "[" in s and "95%" in s


# -------------------------------------------------------------------- DCF

def medium(seed=0, **kwargs):
    sim = Simulator()
    return sim, DcfMedium(sim, RandomRouter(seed).stream("dcf"), **kwargs)


def test_single_station_transmits():
    sim, dcf = medium()
    done = []
    sim.call_at(0.0, dcf.request, "a", 0.001,
                lambda ok: done.append((sim.now, ok)))
    sim.run()
    assert len(done) == 1
    assert done[0][1] is True
    assert done[0][0] >= 0.001          # at least the airtime


def test_transmissions_serialized():
    sim, dcf = medium()
    finish_times = []
    for i in range(5):
        sim.call_at(0.0, dcf.request, f"s{i}", 0.001,
                    lambda ok, i=i: finish_times.append(sim.now))
    sim.run()
    assert len(finish_times) == 5
    gaps = np.diff(sorted(finish_times))
    assert np.all(gaps >= 0.001 - 1e-9)   # one frame at a time


def test_collisions_happen_and_resolve():
    sim, dcf = medium(seed=5, cw_min=1)   # tiny CW -> many collisions
    results = []
    for i in range(20):
        sim.call_at(0.0, dcf.request, f"s{i}", 0.0005,
                    lambda ok: results.append(ok))
    sim.run()
    assert dcf.stats.collisions > 0
    assert len(results) == 20
    assert sum(results) >= 15          # most eventually get through


def test_two_stations_share_airtime_fairly():
    sim, dcf = medium(seed=6)
    counts = {"a": 0, "b": 0}

    def keep_sending(name):
        def on_done(ok):
            counts[name] += 1
            if sim.now < 1.0:
                dcf.request(name, 0.001, on_done)
        return on_done

    sim.call_at(0.0, dcf.request, "a", 0.001, keep_sending("a"))
    sim.call_at(0.0, dcf.request, "b", 0.001, keep_sending("b"))
    sim.run(until=1.2)
    total = counts["a"] + counts["b"]
    assert total > 500                 # the channel stayed busy
    assert abs(counts["a"] - counts["b"]) < 0.25 * total


def test_contender_slows_down_a_flow():
    """Adding a greedy contender must roughly halve a flow's rate."""
    def run(with_contender):
        sim, dcf = medium(seed=7)
        done = {"a": 0}

        def sender(name, counter=True):
            def on_done(ok):
                if counter:
                    done["a"] += 1
                if sim.now < 0.5:
                    dcf.request(name, 0.001, on_done)
            return on_done

        sim.call_at(0.0, dcf.request, "a", 0.001, sender("a"))
        if with_contender:
            sim.call_at(0.0, dcf.request, "b", 0.001,
                        sender("b", counter=False))
        sim.run(until=0.6)
        return done["a"]

    alone = run(False)
    shared = run(True)
    assert shared < 0.7 * alone


def test_utilization_bounded():
    sim, dcf = medium(seed=8)
    for i in range(50):
        sim.call_at(0.0, dcf.request, f"s{i}", 0.001, lambda ok: None)
    sim.run()
    assert 0.0 < dcf.utilization() <= 1.0
