"""Tests for the 802.11 PHY error model and MAC retry engine."""

import numpy as np
import pytest

from repro.sim import RandomRouter
from repro.wifi.mac import MacConfig, MacLayer
from repro.wifi.phy import (
    MCS_TABLE,
    PhyConfig,
    airtime_s,
    effective_snr_db,
    frame_error_prob,
    select_mcs,
)


def rng(seed=0):
    return RandomRouter(seed).stream("mac")


# ------------------------------------------------------------------- PHY

def test_per_monotone_in_snr():
    mcs = MCS_TABLE[3]
    pers = [frame_error_prob(snr, mcs) for snr in range(-5, 40)]
    assert all(a >= b for a, b in zip(pers, pers[1:]))


def test_per_half_at_threshold():
    for mcs in MCS_TABLE:
        assert frame_error_prob(mcs.snr_mid_db, mcs) == pytest.approx(0.5)


def test_per_scales_with_frame_size():
    mcs = MCS_TABLE[0]
    snr = mcs.snr_mid_db + 3.0
    small = frame_error_prob(snr, mcs, frame_bytes=160)
    large = frame_error_prob(snr, mcs, frame_bytes=1500)
    assert small < large


def test_per_bounds():
    mcs = MCS_TABLE[7]
    assert 0.0 <= frame_error_prob(-50.0, mcs) <= 1.0
    assert frame_error_prob(80.0, mcs) < 1e-3


def test_select_mcs_increases_with_snr():
    low = select_mcs(5.0)
    high = select_mcs(35.0)
    assert high.index > low.index


def test_select_mcs_floor_is_mcs0():
    assert select_mcs(-20.0).index == 0


def test_select_mcs_respects_target_per():
    config = PhyConfig(target_per=0.10)
    mcs = select_mcs(15.0, config)
    assert frame_error_prob(15.0, mcs, 1500) <= 0.10


def test_effective_snr_combines_terms():
    assert effective_snr_db(20.0, -5.0, 3.0) == pytest.approx(12.0)


def test_airtime_decreases_with_rate():
    slow = airtime_s(1500, MCS_TABLE[0])
    fast = airtime_s(1500, MCS_TABLE[7])
    assert fast < slow
    assert fast > 0


# ------------------------------------------------------------------- MAC

def test_perfect_channel_delivers_first_attempt():
    mac = MacLayer(MacConfig(), rng(1))
    result = mac.transmit(0.0, lambda t: 0.0)
    assert result.delivered
    assert result.attempts == 1


def test_dead_channel_exhausts_retries():
    config = MacConfig(retry_limit=7)
    mac = MacLayer(config, rng(2))
    result = mac.transmit(0.0, lambda t: 1.0)
    assert not result.delivered
    assert result.attempts == 8


def test_retry_recovers_transient_loss():
    """Loss prob drops after 1 ms: retries within the burst recover it."""
    config = MacConfig(retry_limit=7)
    mac = MacLayer(config, rng(3))
    outcomes = [mac.transmit(0.0, lambda t: 1.0 if t < 0.001 else 0.0)
                for _ in range(50)]
    assert all(o.delivered for o in outcomes)
    assert any(o.attempts > 1 for o in outcomes)


def test_service_time_grows_with_attempts():
    mac = MacLayer(MacConfig(), rng(4))
    one = mac.transmit(0.0, lambda t: 0.0)
    mac_fail = MacLayer(MacConfig(), rng(5))
    eight = mac_fail.transmit(0.0, lambda t: 1.0)
    assert eight.service_time_s > one.service_time_s


def test_loss_rate_with_retries_matches_theory():
    """iid per-attempt loss p, R retries -> residual loss p^(R+1)."""
    p = 0.5
    config = MacConfig(retry_limit=3)
    mac = MacLayer(config, rng(6))
    n = 4000
    losses = sum(not mac.transmit(0.0, lambda t: p).delivered
                 for _ in range(n))
    expected = p ** 4
    assert losses / n == pytest.approx(expected, abs=0.015)


def test_airtime_override_used():
    mac = MacLayer(MacConfig(), rng(7))
    result = mac.transmit(0.0, lambda t: 0.0, airtime_s=0.5)
    assert result.service_time_s >= 0.5


def test_attempt_times_passed_to_loss_model():
    seen = []
    mac = MacLayer(MacConfig(retry_limit=2), rng(8))

    def probe(t):
        seen.append(t)
        return 1.0

    mac.transmit(10.0, probe)
    assert len(seen) == 3
    assert all(t >= 10.0 for t in seen)
    assert seen == sorted(seen)
