"""Tests for the RTCP-driven replication policy."""

import pytest

from repro.core.adaptation import AdaptationConfig, AdaptiveReplicationPolicy
from repro.traffic.rtcp import ReceiverReport


def report(t, loss=0.0, jitter=0.0):
    return ReceiverReport(timestamp=t, fraction_lost=loss,
                          cumulative_lost=0, extended_highest_seq=0,
                          interarrival_jitter_s=jitter)


def test_starts_off():
    policy = AdaptiveReplicationPolicy()
    assert not policy.replicating


def test_turns_on_at_loss_threshold():
    policy = AdaptiveReplicationPolicy()
    assert policy.on_report(report(5.0, loss=0.02)) is True


def test_stays_off_below_threshold():
    policy = AdaptiveReplicationPolicy()
    assert policy.on_report(report(5.0, loss=0.0001)) is False


def test_jitter_alone_triggers():
    policy = AdaptiveReplicationPolicy()
    assert policy.on_report(report(5.0, jitter=0.050)) is True


def test_hysteresis_band_holds_state():
    config = AdaptationConfig(on_loss_threshold=0.01,
                              off_loss_threshold=0.001, min_hold_s=0.0)
    policy = AdaptiveReplicationPolicy(config)
    policy.on_report(report(5.0, loss=0.02))      # on
    # Loss inside the band (between off and on): stays on.
    assert policy.on_report(report(10.0, loss=0.005)) is True
    # Falls below off threshold: turns off.
    assert policy.on_report(report(15.0, loss=0.0)) is False


def test_min_hold_prevents_flapping():
    config = AdaptationConfig(min_hold_s=30.0)
    policy = AdaptiveReplicationPolicy(config)
    policy.on_report(report(5.0, loss=0.02))      # on at t=5
    assert policy.on_report(report(10.0, loss=0.0)) is True   # held
    assert policy.on_report(report(40.0, loss=0.0)) is False  # released


def test_callback_invoked_on_change_only():
    calls = []
    policy = AdaptiveReplicationPolicy(
        AdaptationConfig(min_hold_s=0.0),
        set_replication=calls.append)
    policy.on_report(report(1.0, loss=0.02))
    policy.on_report(report(2.0, loss=0.02))     # no change
    policy.on_report(report(3.0, loss=0.0))
    assert calls == [True, False]


def test_duty_cycle():
    policy = AdaptiveReplicationPolicy(AdaptationConfig(min_hold_s=0.0))
    policy.on_report(report(10.0, loss=0.02))    # on at 10
    policy.on_report(report(40.0, loss=0.0))     # off at 40
    assert policy.duty_cycle(100.0) == pytest.approx(0.3)


def test_duty_cycle_still_on_at_end():
    policy = AdaptiveReplicationPolicy(AdaptationConfig(min_hold_s=0.0))
    policy.on_report(report(50.0, loss=0.02))
    assert policy.duty_cycle(100.0) == pytest.approx(0.5)


def test_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        AdaptationConfig(on_loss_threshold=0.001,
                         off_loss_threshold=0.01)


def test_end_to_end_with_rtcp_receiver():
    """Wire RTCP receiver -> policy over a lossy then clean stream."""
    from repro.sim import Simulator
    sim = Simulator()
    policy = AdaptiveReplicationPolicy(AdaptationConfig(min_hold_s=0.0))
    from repro.traffic.rtcp import RtcpReceiver
    rx = RtcpReceiver(sim, on_report=policy.on_report)
    rx.start()
    # 0-10 s: 10% loss; 10-30 s: clean.
    for seq in range(1500):
        t = seq * 0.02
        if t < 10.0 and seq % 10 == 0:
            continue
        sim.call_at(t + 0.01, rx.on_packet, seq, t, t + 0.01)
    sim.run(until=31.0)
    # The policy must have turned on during the lossy phase and off after.
    assert any(enabled for _, enabled in policy.decisions)
    assert policy.decisions[-1][1] is False
