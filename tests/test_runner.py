"""Tests for the repro.runner subsystem: job model, cache, executor.

The pool tests spawn real worker processes on tasks defined in this
module, so they extend ``PYTHONPATH`` with the repo root (spawn children
re-import tasks by module name).
"""

import json
import multiprocessing
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import EMPTY_METRICS_JSON, active_registry, to_canonical_json
from repro.runner import (
    BatchResult,
    ResultCache,
    RunnerConfig,
    RunSpec,
    RunTimeoutError,
    active_config,
    batch_digest,
    canonical_json,
    clear_memo,
    code_fingerprint,
    configure,
    map_configs,
    map_task,
    run_batch,
    runner_context,
)
from repro.runner.spec import RunResult
from repro.runner.worker import TaskResolutionError, execute_spec, \
    resolve_task

REPO_ROOT = Path(__file__).resolve().parent.parent

ADD_TASK = "tests.test_runner:add_task"
CRASH_TASK = "tests.test_runner:crash_in_worker_task"
SLEEP_TASK = "tests.test_runner:sleep_task"
METERED_TASK = "tests.test_runner:metered_task"


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture()
def pool_pythonpath(monkeypatch):
    """Make this module importable from spawned worker processes."""
    src = REPO_ROOT / "src"
    monkeypatch.setenv(
        "PYTHONPATH", f"{src}{os.pathsep}{REPO_ROOT}")


def add_task(seed, *, offset=0, label="x"):
    return {"value": seed + offset, "label": label, "seed": seed}


def crash_in_worker_task(seed):
    # Dies hard in a pool worker; succeeds on the serial fallback path.
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    return {"seed": seed}


def sleep_task(seed):
    time.sleep(1.5)
    return {"seed": seed}


def metered_task(seed, *, amount=1.0):
    # Records into the registry the runner installs around each task.
    registry = active_registry()
    registry.counter("task.calls").inc()
    registry.counter("task.amount").inc(amount)
    registry.histogram("task.seed", bounds=(2.0, 4.0)).observe(float(seed))
    return {"seed": seed}


# ------------------------------------------------------------------- spec

def test_spec_key_ignores_config_ordering():
    a = RunSpec.build(ADD_TASK, 1, {"offset": 2, "label": "y"})
    b = RunSpec.build(ADD_TASK, 1, {"label": "y", "offset": 2})
    assert a.key == b.key


@pytest.mark.parametrize("other", [
    RunSpec.build(ADD_TASK, 2, {"offset": 2}),              # seed
    RunSpec.build(ADD_TASK, 1, {"offset": 3}),              # config
    RunSpec.build("tests.test_runner:sleep_task", 1,  # reproflow: disable=PUR102
                  {"offset": 2}),                            # task
    RunSpec.build(ADD_TASK, 1, {"offset": 2},
                  fingerprint="f" * 64),                     # fingerprint
])
def test_spec_key_changes_with_any_input(other):
    base = RunSpec.build(ADD_TASK, 1, {"offset": 2})
    assert base.key != other.key


def test_spec_defaults_to_code_fingerprint():
    spec = RunSpec.build(ADD_TASK, 0)
    assert spec.fingerprint == code_fingerprint()
    assert len(spec.fingerprint) == 64


def test_spec_rejects_malformed_task():
    with pytest.raises(ValueError):
        RunSpec.build("not-an-entry-point", 0)


def test_canonical_json_is_byte_stable():
    assert canonical_json({"b": 1, "a": [1.5, True]}) \
        == '{"a":[1.5,true],"b":1}'
    assert canonical_json({"x": np.int64(3), "y": np.float64(0.5),
                           "z": np.bool_(True),
                           "w": np.array([1, 2])}) \
        == '{"w":[1,2],"x":3,"y":0.5,"z":true}'
    with pytest.raises(TypeError):
        canonical_json({"bad": object()})


def test_batch_digest_format_and_order_sensitivity():
    batch = run_batch([RunSpec.build(ADD_TASK, s) for s in (0, 1)])
    digest, count = batch.digest.rsplit("#", 1)
    assert count == "2"
    assert len(digest) == 64
    reversed_digest = batch_digest(tuple(reversed(batch.results)))
    assert reversed_digest != batch.digest


# ------------------------------------------------------------------ cache

def test_cache_roundtrip_and_layout(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec.build(ADD_TASK, 5, {"offset": 1})
    assert cache.get(spec) is None
    cache.put(spec, canonical_json({"value": 6}), EMPTY_METRICS_JSON)
    assert cache.get(spec) == ('{"value":6}', EMPTY_METRICS_JSON)
    path = cache.path_for(spec.key)
    assert path.parent.name == spec.key[:2]
    entry = json.loads(path.read_text())
    assert entry["seed"] == 5 and entry["task"] == ADD_TASK


def test_cache_fingerprint_change_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    old = RunSpec.build(ADD_TASK, 5, fingerprint="a" * 64)
    cache.put(old, canonical_json({"v": 1}), EMPTY_METRICS_JSON)
    new = RunSpec.build(ADD_TASK, 5, fingerprint="b" * 64)
    assert cache.get(new) is None
    assert cache.get(old) == ('{"v":1}', EMPTY_METRICS_JSON)


@pytest.mark.parametrize("corruption", [
    "not json at all {",
    '{"version":999,"key":"KEY","payload":{},"metrics":{"metrics":[]}}',
    '{"version":2,"key":"wrong","payload":{},"metrics":{"metrics":[]}}',
    '{"version":2,"key":"KEY","metrics":{"metrics":[]}}',
    # v1 entries (no metrics blob, wall-clock field) are schema drift
    '{"version":1,"key":"KEY","payload":{},"wall_time_s":0.1}',
])
def test_cache_corrupted_entry_deleted_and_missed(tmp_path, corruption):
    cache = ResultCache(tmp_path)
    spec = RunSpec.build(ADD_TASK, 7)
    path = cache.path_for(spec.key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(corruption.replace("KEY", spec.key))
    assert cache.get(spec) is None
    assert not path.exists()


def test_cache_concurrent_writers_never_leave_torn_entries(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec.build(ADD_TASK, 9)
    payload = canonical_json({"blob": "x" * 4096})

    def hammer():
        for _ in range(50):
            cache.put(spec, payload, EMPTY_METRICS_JSON)
            assert cache.get(spec) == (payload, EMPTY_METRICS_JSON)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.get(spec) == (payload, EMPTY_METRICS_JSON)
    # atomic publishes: no temp files left behind
    assert not list(tmp_path.rglob("*.tmp"))


def _fill_cache(cache, n, size=512):
    """``n`` distinct entries with strictly increasing access times."""
    specs = [RunSpec.build(ADD_TASK, seed, {"pad": "x" * size})
             for seed in range(n)]
    for i, spec in enumerate(specs):
        cache.put(spec, canonical_json({"seed": spec.seed}),
                  EMPTY_METRICS_JSON)
        # Pin timestamps explicitly: filesystem timestamp granularity
        # (and noatime mounts) would otherwise make the order flaky.
        os.utime(cache.path_for(spec.key), (1000 + i, 1000 + i))
    return specs


def test_cache_prune_evicts_least_recently_used_first(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _fill_cache(cache, 6)
    entry_size = cache.path_for(specs[0].key).stat().st_size
    removed = cache.prune(3 * entry_size)
    assert removed == 3
    # The three oldest-accessed entries are gone, the rest survive.
    assert all(cache.get(s) is None for s in specs[:3])
    assert all(cache.get(s) is not None for s in specs[3:])
    assert cache.size_bytes() <= 3 * entry_size


def test_cache_prune_respects_hit_recency(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _fill_cache(cache, 4)
    # A hit refreshes the entry's timestamps, moving it to the LRU tail.
    assert cache.get(specs[0]) is not None
    entry_size = cache.path_for(specs[0].key).stat().st_size
    cache.prune(entry_size)
    assert cache.get(specs[0]) is not None
    assert all(cache.get(s) is None for s in specs[1:])


def test_cache_prune_to_zero_empties_store_and_shards(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _fill_cache(cache, 5)
    assert cache.prune(0) == 5
    assert cache.size_bytes() == 0
    assert all(cache.get(s) is None for s in specs)
    # Emptied two-character fan-out shards are swept away.
    assert not [p for p in tmp_path.iterdir() if p.is_dir()]


def test_cache_prune_noop_under_limit(tmp_path):
    cache = ResultCache(tmp_path)
    _fill_cache(cache, 3)
    assert cache.prune(10 * 1024 * 1024) == 0
    assert len(list(cache.entries())) == 3
    with pytest.raises(ValueError):
        cache.prune(-1)


def test_cache_prune_under_concurrent_reads(tmp_path):
    """Readers racing a pruner see a hit or a clean miss, never a torn
    entry or an exception — eviction is a single atomic unlink."""
    cache = ResultCache(tmp_path)
    specs = [RunSpec.build(ADD_TASK, seed, {"blob": "x" * 2048})
             for seed in range(8)]
    payloads = {s.key: canonical_json({"seed": s.seed}) for s in specs}
    for spec in specs:
        cache.put(spec, payloads[spec.key], EMPTY_METRICS_JSON)
    failures = []

    def read_loop():
        for _ in range(40):
            for spec in specs:
                got = cache.get(spec)
                if got is not None and \
                        got != (payloads[spec.key], EMPTY_METRICS_JSON):
                    failures.append(got)

    def prune_loop():
        for _ in range(20):
            cache.prune(3 * 1024)
            for spec in specs:   # refill so readers keep racing
                cache.put(spec, payloads[spec.key], EMPTY_METRICS_JSON)

    threads = [threading.Thread(target=read_loop) for _ in range(3)]
    threads.append(threading.Thread(target=prune_loop))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures


# ----------------------------------------------------------------- worker

def test_resolve_task_errors():
    with pytest.raises(TaskResolutionError):
        resolve_task("no-colon")
    with pytest.raises(TaskResolutionError):
        resolve_task("no.such.module:fn")
    with pytest.raises(TaskResolutionError):
        resolve_task("tests.test_runner:not_a_function")


def test_execute_spec_returns_canonical_payload():
    payload_json, metrics_json, wall = execute_spec(
        ADD_TASK, canonical_json({"offset": 10}), 2)
    assert json.loads(payload_json) == {"value": 12, "label": "x",
                                        "seed": 2}
    assert metrics_json == EMPTY_METRICS_JSON   # task records nothing
    assert wall >= 0.0


# --------------------------------------------------------------- executor

def test_map_task_returns_payloads_in_seed_order():
    payloads = map_task(ADD_TASK, [3, 1, 2], {"offset": 100})
    assert [p["seed"] for p in payloads] == [3, 1, 2]
    assert [p["value"] for p in payloads] == [103, 101, 102]


def test_map_configs_varies_config_per_item():
    payloads = map_configs(ADD_TASK, [(0, {"offset": 1}),
                                      (0, {"offset": 2})])
    assert [p["value"] for p in payloads] == [1, 2]


def test_memo_makes_second_batch_free():
    specs = [RunSpec.build(ADD_TASK, s) for s in range(4)]
    first = run_batch(specs)
    second = run_batch(specs)
    assert first.stats.executed == 4
    assert second.stats.executed == 0
    assert second.stats.memo_hits == 4
    assert second.digest == first.digest
    assert second.payloads == first.payloads


def test_no_cache_bypasses_memo_and_disk(tmp_path):
    specs = [RunSpec.build(ADD_TASK, s) for s in range(3)]
    config = RunnerConfig(cache_dir=tmp_path)
    run_batch(specs, config=config)
    rerun = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path,
                                                 no_cache=True))
    assert rerun.stats.executed == 3
    assert rerun.stats.cache_hits == 0 and rerun.stats.memo_hits == 0


def test_disk_cache_warm_rerun_executes_nothing(tmp_path):
    specs = [RunSpec.build(ADD_TASK, s, {"offset": 7}) for s in range(4)]
    cold = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path))
    clear_memo()   # fresh process simulation: only the disk survives
    warm = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path))
    assert cold.stats.executed == 4
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 4
    assert warm.digest == cold.digest
    assert warm.payloads == cold.payloads


def test_disk_cache_invalidated_by_fingerprint_change(tmp_path):
    config = RunnerConfig(cache_dir=tmp_path)
    old = [RunSpec.build(ADD_TASK, 0, fingerprint="a" * 64)]
    run_batch(old, config=config)
    clear_memo()
    new = [RunSpec.build(ADD_TASK, 0, fingerprint="b" * 64)]
    rerun = run_batch(new, config=config)
    assert rerun.stats.executed == 1
    assert rerun.stats.cache_hits == 0


def test_corrupted_disk_entry_recomputed_and_rewritten(tmp_path):
    spec = RunSpec.build(ADD_TASK, 1)
    cache_config = RunnerConfig(cache_dir=tmp_path)
    run_batch([spec], config=cache_config)
    clear_memo()
    path = ResultCache(tmp_path).path_for(spec.key)
    path.write_text("truncated{")
    rerun = run_batch([spec], config=cache_config)
    assert rerun.stats.executed == 1
    assert json.loads(path.read_text())["key"] == spec.key


def test_progress_and_batch_hooks():
    events = []
    batches = []
    config = RunnerConfig(progress=events.append,
                          on_batch=batches.append)
    run_batch([RunSpec.build(ADD_TASK, s) for s in range(3)],
              config=config)
    assert [e.completed for e in events] == [1, 2, 3]
    assert all(e.total == 3 and not e.cached for e in events)
    assert len(batches) == 1 and isinstance(batches[0], BatchResult)
    assert "3 run(s), 3 executed" in batches[0].stats.summary()


def test_runner_config_validation():
    with pytest.raises(ValueError):
        RunnerConfig(jobs=0)
    with pytest.raises(ValueError):
        RunnerConfig(retries=-1)


def test_runner_context_scopes_and_restores():
    before = active_config()
    with runner_context(jobs=3, cache_dir="~/somewhere") as config:
        assert active_config() is config
        assert config.jobs == 3
        assert config.cache_dir == Path("~/somewhere").expanduser()
    assert active_config() is before


def test_configure_returns_previous():
    previous = configure(jobs=2)
    try:
        assert active_config().jobs == 2
    finally:
        configure(jobs=previous.jobs)


# ------------------------------------------------------------ pool / par

def test_pool_matches_serial_payloads_and_digest(pool_pythonpath):
    specs = [RunSpec.build(ADD_TASK, s, {"offset": 5}) for s in range(6)]
    serial = run_batch(specs, config=RunnerConfig(no_cache=True))
    parallel = run_batch(specs, config=RunnerConfig(jobs=2,
                                                    no_cache=True))
    assert parallel.stats.pool_used
    assert parallel.digest == serial.digest
    assert parallel.payloads == serial.payloads
    assert all(r.worker == "pool" for r in parallel.results)


def test_pool_timeout_aborts_batch(pool_pythonpath):
    # the task sleeps on purpose: the clock read IS the behavior under
    # test (timeouts), and no_cache=True keeps it out of the ResultCache
    specs = [RunSpec.build(SLEEP_TASK, s)  # reproflow: disable=PUR102
             for s in range(2)]
    config = RunnerConfig(jobs=2, timeout_s=0.2, no_cache=True)
    with pytest.raises(RunTimeoutError) as excinfo:
        run_batch(specs, config=config)
    assert excinfo.value.timeout_s == 0.2


def test_pool_crash_falls_back_to_serial(pool_pythonpath):
    specs = [RunSpec.build(CRASH_TASK, s) for s in range(2)]
    config = RunnerConfig(jobs=2, retries=0, no_cache=True)
    batch = run_batch(specs, config=config)
    assert batch.stats.retries == 1
    assert [p["seed"] for p in batch.payloads] == [0, 1]
    assert all(r.worker == "serial" for r in batch.results)


def test_sanitize_asserts_merge_contract(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    specs = [RunSpec.build(ADD_TASK, s) for s in range(3)]
    batch = run_batch(specs)
    assert batch.digest == run_batch(specs).digest


# ---------------------------------------------------------------- metrics

def test_run_results_carry_metrics_blob():
    specs = [RunSpec.build(METERED_TASK, s, {"amount": 2.0})
             for s in range(3)]
    batch = run_batch(specs, config=RunnerConfig(no_cache=True))
    for result in batch.results:
        assert result.metrics.counter("task.calls").value == 1.0
    merged = batch.merged_metrics()
    assert merged.counter("task.calls").value == 3.0
    assert merged.counter("task.amount").value == 6.0
    # Histogram buckets are half-open: seeds {0,1} < 2, {2,3} in [2,4).
    assert merged.histogram("task.seed", bounds=(2.0, 4.0)).counts \
        == [2, 1, 0]


def test_metrics_fold_into_batch_digest():
    spec = RunSpec.build(METERED_TASK, 0)
    base = run_batch([spec], config=RunnerConfig(no_cache=True)).results[0]
    tampered = RunResult(spec=base.spec, payload_json=base.payload_json,
                         wall_time_s=0.0, metrics_json=EMPTY_METRICS_JSON)
    assert base.metrics_json != EMPTY_METRICS_JSON
    assert batch_digest((base,)) != batch_digest((tampered,))


def test_metrics_identical_serial_parallel_and_warm(pool_pythonpath,
                                                    tmp_path):
    """The tentpole determinism claim at the runner level: the merged
    metrics export is byte-identical whether runs executed serially,
    on a spawn pool, or replayed from the disk cache."""
    specs = [RunSpec.build(METERED_TASK, s) for s in range(4)]
    serial = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path))
    parallel = run_batch(specs, config=RunnerConfig(jobs=2, no_cache=True))
    clear_memo()
    warm = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path))
    assert parallel.stats.pool_used
    assert warm.stats.cache_hits == 4 and warm.stats.executed == 0
    blobs = [to_canonical_json(batch.merged_metrics())
             for batch in (serial, parallel, warm)]
    assert blobs[0] == blobs[1] == blobs[2]
    assert serial.digest == parallel.digest == warm.digest


# ------------------------------------------------- cache-hit timing fix

def test_cache_entry_carries_no_wall_clock(tmp_path):
    """Regression: v1 entries stored the original run's ``wall_time_s``,
    so byte-identical simulations cached on different machines produced
    different cache files and hits replayed stale timings."""
    spec = RunSpec.build(ADD_TASK, 3)
    run_batch([spec], config=RunnerConfig(cache_dir=tmp_path))
    entry = json.loads(ResultCache(tmp_path).path_for(spec.key).read_text())
    assert "wall_time_s" not in entry
    assert set(entry) == {"version", "key", "task", "seed", "config",
                          "fingerprint", "payload", "metrics"}


def test_cache_hit_latency_reported_separately(tmp_path):
    specs = [RunSpec.build(ADD_TASK, s) for s in range(3)]
    cold = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path))
    assert cold.stats.hit_wall_times_s == []
    assert all(r.hit_wall_time_s == 0.0 for r in cold.results)
    clear_memo()
    warm = run_batch(specs, config=RunnerConfig(cache_dir=tmp_path))
    # The lookup cost lands on hit_wall_time_s; wall_time_s stays 0.0
    # because no simulation ran (replaying the original elapsed time
    # would corrupt executed-run statistics).
    assert len(warm.stats.hit_wall_times_s) == 3
    assert all(t >= 0.0 for t in warm.stats.hit_wall_times_s)
    for result in warm.results:
        assert result.cached and result.worker == "disk"
        assert result.wall_time_s == 0.0
        assert result.hit_wall_time_s >= 0.0
    assert warm.stats.run_wall_times_s == []
