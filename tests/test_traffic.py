"""Tests for traffic sources: RTP, VoIP/high-rate senders, TCP Reno."""

import numpy as np
import pytest

from repro.core.config import G711_PROFILE, StreamProfile
from repro.sim import RandomRouter, Simulator
from repro.traffic.highrate import HighRateSender
from repro.traffic.rtp import (
    HEADER_BYTES,
    RtpHeader,
    profile_for_payload_type,
)
from repro.traffic.tcp import TcpReno
from repro.traffic.voip import VoipSender


# --------------------------------------------------------------------- RTP

def test_rtp_header_roundtrip():
    header = RtpHeader(payload_type=0, sequence_number=12345,
                       timestamp=99999, ssrc=0xDEADBEEF, marker=True)
    parsed = RtpHeader.unpack(header.pack())
    assert parsed == header


def test_rtp_header_size():
    assert HEADER_BYTES == 12
    assert len(RtpHeader(0, 0, 0, 0).pack()) == 12


def test_rtp_invalid_fields_rejected():
    with pytest.raises(ValueError):
        RtpHeader(payload_type=200, sequence_number=0,
                  timestamp=0, ssrc=0).pack()
    with pytest.raises(ValueError):
        RtpHeader(payload_type=0, sequence_number=70000,
                  timestamp=0, ssrc=0).pack()


def test_rtp_unpack_validates():
    with pytest.raises(ValueError):
        RtpHeader.unpack(b"\x00" * 5)
    bad_version = b"\x00" + b"\x00" * 11
    with pytest.raises(ValueError):
        RtpHeader.unpack(bad_version)


def test_profile_lookup_g711():
    profile = profile_for_payload_type(0)
    assert profile.packet_size_bytes == 160
    assert profile.inter_packet_spacing_s == pytest.approx(0.020)


def test_profile_lookup_unknown_raises():
    with pytest.raises(KeyError):
        profile_for_payload_type(96)   # dynamic payload type


# ------------------------------------------------------------ VoIP sender

def test_voip_sender_emits_full_stream():
    sim = Simulator()
    profile = StreamProfile(duration_s=1.0)   # 50 packets
    got = []
    sender = VoipSender(sim, profile)
    sender.attach(lambda p: got.append((p.seq, sim.now)))
    sender.start()
    sim.run()
    assert len(got) == 50
    assert got[0] == (0, 0.0)
    assert got[-1][0] == 49
    assert got[-1][1] == pytest.approx(49 * 0.020)


def test_voip_sender_replicates_to_all_sinks():
    sim = Simulator()
    profile = StreamProfile(duration_s=0.1)
    a, b = [], []
    sender = VoipSender(sim, profile)
    sender.attach(a.append, link="primary")
    sender.attach(b.append, link="secondary")
    sender.start()
    sim.run()
    assert len(a) == len(b) == profile.n_packets
    assert not a[0].is_duplicate
    assert b[0].is_duplicate
    assert b[0].link == "secondary"


def test_voip_sender_without_sinks_raises():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        VoipSender(sim, G711_PROFILE).start()


def test_highrate_sender_rejects_low_rate_profile():
    sim = Simulator()
    with pytest.raises(ValueError):
        HighRateSender(sim, profile=G711_PROFILE)


def test_highrate_sender_spacing():
    sim = Simulator()
    got = []
    profile = StreamProfile(name="hr", packet_size_bytes=1000,
                            inter_packet_spacing_s=0.0016, duration_s=0.016)
    sender = HighRateSender(sim, profile)
    sender.attach(lambda p: got.append(sim.now))
    sender.start()
    sim.run()
    assert len(got) == 10
    assert got[1] - got[0] == pytest.approx(0.0016)


# --------------------------------------------------------------- TCP Reno

def run_tcp(duration=20.0, capacity=4.6e6, radio=lambda: True,
            loss=0.002, seed=0):
    sim = Simulator()
    tcp = TcpReno(sim, RandomRouter(seed).stream("tcp"),
                  capacity_bps=capacity, duration_s=duration,
                  radio_present=radio, wireless_loss_prob=loss)
    tcp.start()
    sim.run(until=duration + 1.0)
    return tcp


def test_tcp_approaches_capacity():
    tcp = run_tcp(duration=30.0, loss=0.0)
    assert tcp.stats.throughput_mbps > 3.5   # of 4.6 Mbps capacity


def test_tcp_cannot_exceed_capacity():
    tcp = run_tcp(duration=20.0, loss=0.0)
    assert tcp.stats.throughput_bps <= 4.6e6 * 1.02


def test_tcp_loss_reduces_throughput():
    clean = run_tcp(duration=20.0, loss=0.0, seed=1)
    lossy = run_tcp(duration=20.0, loss=0.02, seed=1)
    assert lossy.stats.throughput_bps < clean.stats.throughput_bps
    assert lossy.stats.retransmits > 0


def test_tcp_radio_absence_costs_throughput():
    """A radio absent 20% of the time must cost roughly that much."""
    sim_time = {"now": 0.0}

    clean = run_tcp(duration=30.0, loss=0.0, seed=2)

    sim = Simulator()
    # absent during [t, t+0.2) of every second
    tcp = TcpReno(sim, RandomRouter(2).stream("tcp"),
                  duration_s=30.0, wireless_loss_prob=0.0,
                  radio_present=lambda: (sim.now % 1.0) >= 0.2)
    tcp.start()
    sim.run(until=31.0)
    ratio = tcp.stats.throughput_bps / clean.stats.throughput_bps
    assert 0.6 < ratio < 0.95


def test_tcp_slow_start_grows_window():
    sim = Simulator()
    tcp = TcpReno(sim, RandomRouter(3).stream("tcp"), duration_s=2.0,
                  wireless_loss_prob=0.0)
    tcp.start()
    sim.run(until=3.0)
    assert tcp.cwnd_segments > 2.0


def test_tcp_double_start_rejected():
    sim = Simulator()
    tcp = TcpReno(sim, RandomRouter(4).stream("tcp"))
    tcp.start()
    with pytest.raises(RuntimeError):
        tcp.start()


def test_tcp_stats_throughput_zero_without_duration():
    from repro.traffic.tcp import TcpStats
    assert TcpStats(duration_s=0.0).throughput_bps == 0.0
