"""Tests for the composed WifiLink and paired-link construction."""

import numpy as np
import pytest

from repro.channel.gilbert import GilbertParams
from repro.channel.interference import MicrowaveOven
from repro.channel.link import LinkConfig, WifiLink, paired_links
from repro.channel.mobility import Position, StaticPosition
from repro.channel.pathloss import PathLossParams
from repro.core.config import StreamProfile
from repro.sim import RandomRouter


SHORT = StreamProfile(duration_s=10.0)  # 500 packets


def make_link(seed=0, distance=8.0, **config_kwargs):
    config = LinkConfig(**config_kwargs)
    mobility = StaticPosition(Position(
        config.ap_position.x + distance, config.ap_position.y))
    return WifiLink(config, RandomRouter(seed), mobility=mobility)


def test_close_clean_link_lossless():
    link = make_link(distance=3.0, gilbert=GilbertParams(
        mean_good_s=1e9, mean_bad_s=0.01, loss_good=0.0, loss_bad=0.0))
    trace = link.generate_trace(SHORT)
    assert trace.loss_rate == 0.0
    assert np.all(trace.delays[trace.delivered] > 0)


def test_far_link_lossier_than_near():
    near = make_link(seed=1, distance=3.0)
    far = make_link(seed=1, distance=60.0,
                    pathloss=PathLossParams(exponent=3.8))
    near_trace = near.generate_trace(SHORT)
    far_trace = far.generate_trace(SHORT)
    assert far_trace.loss_rate >= near_trace.loss_rate


def test_rssi_reflects_distance():
    near = make_link(distance=2.0)
    far = make_link(distance=25.0)
    assert near.rssi_dbm(0.0) > far.rssi_dbm(0.0)


def test_outage_state_produces_burst_loss():
    # A chain pinned to BAD with certain loss: everything lost.
    link = make_link(gilbert=GilbertParams(
        mean_good_s=1e-3, mean_bad_s=1e9, loss_good=1.0, loss_bad=1.0))
    trace = link.generate_trace(SHORT)
    assert trace.loss_rate == 1.0


def test_trace_delay_includes_base_delay():
    link = make_link(distance=3.0, base_delay_s=0.004,
                     gilbert=GilbertParams(loss_good=0.0, loss_bad=0.0,
                                           mean_good_s=1e9, mean_bad_s=0.01))
    trace = link.generate_trace(SHORT)
    assert np.nanmin(trace.delays) >= 0.004


def test_determinism_same_seed():
    a = make_link(seed=7).generate_trace(SHORT)
    b = make_link(seed=7).generate_trace(SHORT)
    assert np.array_equal(a.delivered, b.delivered)


def test_different_seed_differs():
    # Use a moderately lossy link so outcomes can differ.
    params = dict(gilbert=GilbertParams(mean_good_s=1.0, mean_bad_s=0.5,
                                        loss_good=0.05, loss_bad=0.95))
    a = make_link(seed=8, **params).generate_trace(SHORT)
    b = make_link(seed=9, **params).generate_trace(SHORT)
    assert not np.array_equal(a.delivered, b.delivered)


def test_mcs_adapts_to_snr():
    near = make_link(distance=2.0)
    far = make_link(distance=40.0, pathloss=PathLossParams(exponent=3.8))
    assert near.mcs.index >= far.mcs.index


def test_out_of_order_queries_tolerated():
    """MAC retry bursts overrun the next packet's send time; the link's
    query clock must absorb that without raising."""
    link = make_link()
    link.attempt_loss_prob(1.0)
    # a query slightly in the past must not raise
    assert 0.0 <= link.attempt_loss_prob(0.995) <= 1.0


def test_paired_links_shared_interference():
    oven = MicrowaveOven(RandomRouter(3).stream("oven"),
                         episode_rate_hz=1000.0, episode_duration_s=1e9,
                         penalty_db=60.0)
    config_a = LinkConfig(name="A", ap_position=Position(0, 0))
    config_b = LinkConfig(name="B", ap_position=Position(30, 15))
    link_a, link_b = paired_links(config_a, config_b, RandomRouter(4),
                                  shared_interference=oven)
    # Both links see the oven's penalty at a radiating instant.
    t = 100.0  # well inside the always-on episode
    while not oven.is_radiating(t):
        t += 0.001
    assert link_a.attempt_loss_prob(t) > 0.9
    assert link_b.attempt_loss_prob(t) > 0.9


def test_paired_links_independent_by_default():
    config_a = LinkConfig(name="A")
    config_b = LinkConfig(name="B")
    link_a, link_b = paired_links(config_a, config_b, RandomRouter(5))
    trace_a = link_a.generate_trace(SHORT)
    trace_b = link_b.generate_trace(SHORT)
    # Different RNG streams: delay patterns must differ.
    assert not np.array_equal(trace_a.delays, trace_b.delays)


def test_mimo_link_fades_less():
    """4 spatial branches remove deep fades -> fewer PHY losses on a
    marginal link."""
    from repro.wifi.phy import PhyConfig
    common = dict(
        distance=30.0,
        pathloss=PathLossParams(exponent=3.6, shadowing_sigma_db=0.0),
        gilbert=GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                              loss_good=0.0, loss_bad=0.0))
    siso = make_link(seed=10, phy=PhyConfig(n_spatial_branches=1), **common)
    mimo = make_link(seed=10, phy=PhyConfig(n_spatial_branches=4), **common)
    siso_trace = siso.generate_trace(SHORT)
    mimo_trace = mimo.generate_trace(SHORT)
    assert mimo_trace.loss_rate <= siso_trace.loss_rate
