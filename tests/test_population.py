"""Population backend (repro.studies.population) vs the scalar paths.

The contract under test: the vectorized, runner-sharded population
studies are *exactly* equal to the scalar per-call loops — bit-level at
the block-render layer, value-level for every Table 1 / Table 2 row —
and their batch digests are identical serial vs ``--jobs 2``.
"""

import io

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.runner import RunnerConfig
from repro.studies.nettest import run_nettest_study
from repro.studies.population import (
    nettest_population_study,
    provider_block_calls,
    provider_population_study,
    render_provider_block,
)
from repro.studies.provider import (
    analyze_table1,
    pair_state,
    synthesize_provider_block,
    synthesize_provider_year,
)

# ------------------------------------------------------- block bit parity


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("block,count", [(0, 2000), (1, 513)])
def test_render_block_bit_exact_vs_scalar(seed, block, count):
    """The vectorized renderer consumes the same named substreams as the
    scalar loop and must reproduce every call bit-for-bit — including a
    truncated final block."""
    pairs = pair_state(seed, 3000)
    scalar = synthesize_provider_block(block, count, seed, pairs)
    vector = provider_block_calls(
        render_provider_block(block, count, seed, pairs))
    assert len(scalar) == len(vector)       # rated subset of `count`
    assert 0 < len(scalar) < count
    for s, v in zip(scalar, vector):
        assert (s.subnet_pair, s.category, s.pc_class, s.rating) == \
            (v.subnet_pair, v.category, v.pc_class, v.rating)


def test_render_block_response_bias_off_parity():
    pairs = pair_state(1, 3000)
    scalar = synthesize_provider_block(0, 800, 1, pairs,
                                       response_bias=False)
    vector = provider_block_calls(
        render_provider_block(0, 800, 1, pairs, response_bias=False))
    assert [(s.subnet_pair, s.rating) for s in scalar] == \
        [(v.subnet_pair, v.rating) for v in vector]


# ------------------------------------------------- Table 1 exact parity


@pytest.mark.parametrize("seed", [0, 3])
def test_table1_exact_parity_vs_scalar(seed):
    """Whole-study equality at small N: same rows (labels, deltas,
    counts), same overall PCR — exactly, not approximately."""
    n_calls = 30_000
    scalar_rows = analyze_table1(
        synthesize_provider_year(n_calls=n_calls, seed=seed))
    tables = provider_population_study(n_calls=n_calls, seed=seed)
    assert len(tables.rows) == len(scalar_rows)
    for got, want in zip(tables.rows, scalar_rows):
        assert got.label == want.label
        assert got.n_calls == want.n_calls
        for field in ("delta_ee_pct", "delta_ew_pct", "delta_ww_pct"):
            g, w = getattr(got, field), getattr(want, field)
            assert g == w or (np.isnan(g) and np.isnan(w))
    assert tables.n_calls == n_calls
    assert tables.n_rated_calls == scalar_rows[0].n_calls
    assert 0.0 <= tables.pcr_wilson[0] <= tables.overall_pcr \
        <= tables.pcr_wilson[1] <= 1.0


def test_provider_population_sketches_cover_rated_calls():
    tables = provider_population_study(n_calls=20_000, seed=2)
    assert tables.mos_cdf.count == tables.n_rated_calls
    assert tables.mos_moments.count == tables.n_rated_calls
    assert 1.0 <= tables.mos_moments.mean <= 4.5


# ------------------------------------------------- Table 2 exact parity


@pytest.mark.parametrize("seed,scale", [(0, 0.05), (5, 0.02)])
def test_nettest_exact_parity_vs_scalar(seed, scale):
    dataset = run_nettest_study(seed=seed, scale=scale)
    tables = nettest_population_study(seed=seed, scale=scale)

    assert tables.rows == dataset.table2()
    assert tables.overall_pcr == dataset.pcr()
    assert tables.n_calls == len(dataset.calls)
    frac_any, frac_20 = dataset.spatial_stats()
    assert tables.frac_users_any_poor == frac_any
    assert tables.frac_users_pcr20 == frac_20
    assert tables.mos_cdf.count == len(dataset.calls)


# --------------------------------------- scheduling/caching determinism


def test_provider_population_serial_vs_jobs2_digests(tmp_path):
    """Serial, --jobs 2 and warm-cache runs must merge to identical
    tables AND identical batch digests (the spec-order merge contract).
    """
    n_calls = 40_000          # 3 blocks x 2 passes

    def run(jobs, cache, no_cache=False):
        digests = []
        tables = provider_population_study(
            n_calls=n_calls, seed=0,
            runner_config=RunnerConfig(
                jobs=jobs, cache_dir=cache, no_cache=no_cache,
                on_batch=lambda batch: digests.append(batch.digest)))
        return tables, digests

    serial, serial_digests = run(1, tmp_path / "cache")
    jobs2, jobs2_digests = run(2, None, no_cache=True)
    warm, warm_digests = run(1, tmp_path / "cache")

    for other in (jobs2, warm):
        assert other.rows == serial.rows
        assert other.overall_pcr == serial.overall_pcr
        assert other.mos_moments.to_payload() == \
            serial.mos_moments.to_payload()
    assert jobs2_digests == serial_digests
    assert warm_digests == serial_digests


def test_nettest_population_serial_vs_jobs2_digests(tmp_path):
    def run(jobs):
        digests = []
        tables = nettest_population_study(
            seed=1, scale=0.02,
            runner_config=RunnerConfig(
                jobs=jobs, cache_dir=tmp_path / "cache",
                no_cache=(jobs > 1),
                on_batch=lambda batch: digests.append(batch.digest)))
        return tables, digests

    serial, serial_digests = run(1)
    jobs2, jobs2_digests = run(2)
    assert jobs2.rows == serial.rows
    assert jobs2_digests == serial_digests


# ------------------------------------------------------------ CLI surface


def test_cli_provider_calls_smoke():
    out = io.StringIO()
    assert cli_main(["provider", "--calls", "2000"], out=out) == 0
    text = out.getvalue()
    assert "Table 1 (population backend)" in text
    assert "Wilson" in text
    assert "digest=" in text


def test_cli_nettest_calls_smoke():
    out = io.StringIO()
    assert cli_main(["nettest", "--calls", "150"], out=out) == 0
    text = out.getvalue()
    assert "Table 2 (population backend)" in text
    assert "digest=" in text


def test_cli_calls_rejected_elsewhere():
    with pytest.raises(SystemExit):
        cli_main(["fig2a", "--runs", "2", "--calls", "100"])
