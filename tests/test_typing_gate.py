"""Annotation-completeness gate for ``src/repro/core``.

``make typecheck`` runs ``mypy --strict`` over the package, but mypy is
an optional dev dependency; this test is the always-on proxy that keeps
the core package's public surface fully annotated, so a strict mypy run
never regresses silently on machines without it.

Every function and method in ``repro.core`` must annotate every
parameter (``self``/``cls``/``*args``/``**kwargs`` positions included
once named) and its return type.  Nested helper functions and lambdas
are exempt — mypy infers those.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

CORE = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"

CORE_FILES = sorted(CORE.glob("*.py"))


def _module_scope_functions(tree: ast.Module):
    """(owner, func) pairs for module-level functions and class methods —
    nested functions are skipped (mypy infers them under --strict)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield "<module>", node
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, stmt


def _missing_annotations(owner: str, func: ast.FunctionDef):
    args = func.args
    params = list(args.posonlyargs) + list(args.args)
    if owner != "<module>" and params:
        params = params[1:]                      # self / cls
    params += list(args.kwonlyargs)
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    for param in params:
        if param.annotation is None:
            yield f"parameter '{param.arg}'"
    if func.returns is None and func.name != "__init__":
        yield "return type"


def test_core_package_exists():
    assert CORE_FILES, f"no python files under {CORE}"


@pytest.mark.parametrize("path", CORE_FILES, ids=lambda p: p.name)
def test_core_functions_fully_annotated(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems = []
    for owner, func in _module_scope_functions(tree):
        for gap in _missing_annotations(owner, func):
            problems.append(
                f"{path.name}:{func.lineno} {owner}.{func.name}: "
                f"missing annotation for {gap}")
    assert not problems, "\n" + "\n".join(problems)
