"""Annotation-completeness gate for the strict packages.

``make typecheck`` runs mypy with strict profiles over ``repro.core``,
``repro.runner`` and ``repro.obs``, and strict-lite profiles (see
``mypy.ini``) over ``repro.sim``, ``repro.channel``, ``repro.batch``,
``repro.studies`` and ``repro.analysis.sketch`` — but mypy is an
optional dev dependency; this test is the always-on proxy that keeps
every gated package's public surface fully annotated, so a strict mypy
run never regresses silently on machines without it.

Every function and method in a strict package must annotate every
parameter (``self``/``cls``/``*args``/``**kwargs`` positions included
once named) and its return type.  Nested helper functions and lambdas
are exempt — mypy infers those.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: the packages mypy.ini holds to a strict or strict-lite profile
STRICT_PACKAGES = ("batch", "channel", "core", "net", "obs", "runner",
                   "sim", "studies")

STRICT_FILES = sorted(path for package in STRICT_PACKAGES
                      for path in (SRC / package).glob("*.py"))


def _module_scope_functions(tree: ast.Module):
    """(owner, func) pairs for module-level functions and class methods —
    nested functions are skipped (mypy infers them under --strict)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield "<module>", node
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, stmt


def _missing_annotations(owner: str, func: ast.FunctionDef):
    args = func.args
    params = list(args.posonlyargs) + list(args.args)
    if owner != "<module>" and params:
        params = params[1:]                      # self / cls
    params += list(args.kwonlyargs)
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    for param in params:
        if param.annotation is None:
            yield f"parameter '{param.arg}'"
    if func.returns is None and func.name != "__init__":
        yield "return type"


def test_strict_packages_exist():
    for package in STRICT_PACKAGES:
        assert list((SRC / package).glob("*.py")), \
            f"no python files under {SRC / package}"


@pytest.mark.parametrize(
    "path", STRICT_FILES, ids=lambda p: f"{p.parent.name}/{p.name}")
def test_strict_functions_fully_annotated(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems = []
    for owner, func in _module_scope_functions(tree):
        for gap in _missing_annotations(owner, func):
            problems.append(
                f"{path.name}:{func.lineno} {owner}.{func.name}: "
                f"missing annotation for {gap}")
    assert not problems, "\n" + "\n".join(problems)
