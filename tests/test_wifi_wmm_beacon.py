"""Tests for WMM priority queueing and beacon/TIM-driven PSM."""

import numpy as np
import pytest

from repro.core.config import APConfig
from repro.core.packet import Packet
from repro.sim import Simulator
from repro.wifi.ap import AccessPoint
from repro.wifi.beacon import (
    Beacon,
    BeaconScheduler,
    DEFAULT_BEACON_INTERVAL_S,
    StandardPsmClient,
)
from repro.wifi.wmm import (
    AC_BEST_EFFORT,
    AC_VOICE,
    WmmAccessPoint,
)

from tests.test_wifi_ap import PerfectLink


def packet(seq, flow="rt0"):
    return Packet(seq=seq, send_time=0.0, flow_id=flow)


# --------------------------------------------------------------------- WMM

def test_wmm_classifies_flows():
    sim = Simulator()
    ap = WmmAccessPoint(sim, PerfectLink())
    ap.set_receiver(lambda p, t, n: None)
    sim.call_at(0.0, ap.wired_arrival, packet(0, "rt0"))
    sim.call_at(0.0, ap.wired_arrival, packet(1, "web"))
    sim.run()
    assert ap.stats.enqueued[AC_VOICE] == 1
    assert ap.stats.enqueued[AC_BEST_EFFORT] == 1


def test_wmm_voice_served_first():
    sim = Simulator()
    ap = WmmAccessPoint(sim, PerfectLink())
    got = []
    ap.set_receiver(lambda p, t, n: got.append(p.flow_id))
    # Enqueue bulk first, voice second: voice must still win the medium.
    for i in range(5):
        sim.call_at(0.0, ap.wired_arrival, packet(i, "web"))
    sim.call_at(0.0, ap.wired_arrival, packet(99, "rt0"))
    sim.run()
    # The first web packet may already be in service; voice goes next.
    assert got.index("rt0") <= 1


def test_wmm_disabled_is_fifo():
    sim = Simulator()
    ap = WmmAccessPoint(sim, PerfectLink(), enabled=False)
    got = []
    ap.set_receiver(lambda p, t, n: got.append(p.seq))
    for i in range(3):
        sim.call_at(0.0, ap.wired_arrival, packet(i, "web"))
    sim.call_at(0.0, ap.wired_arrival, packet(3, "rt0"))
    sim.run()
    assert got == [0, 1, 2, 3]


def test_wmm_voice_queueing_delay_lower_under_load():
    sim = Simulator()
    ap = WmmAccessPoint(sim, PerfectLink(), queue_limit=1000)
    ap.set_receiver(lambda p, t, n: None)
    # A standing backlog of best-effort plus periodic voice.
    for i in range(200):
        sim.call_at(0.001 * i, ap.wired_arrival, packet(i, "web"))
    for i in range(10):
        sim.call_at(0.02 * i, ap.wired_arrival, packet(1000 + i, "rt0"))
    sim.run()
    assert (ap.stats.mean_queueing_delay_s(AC_VOICE)
            < ap.stats.mean_queueing_delay_s(AC_BEST_EFFORT))


def test_wmm_protects_voice_on_overflow():
    sim = Simulator()
    ap = WmmAccessPoint(sim, PerfectLink(), queue_limit=5)
    ap.set_receiver(lambda p, t, n: None)
    # Fill with best effort at one instant, then voice arrives.
    for i in range(8):
        sim.call_at(0.0, ap.wired_arrival, packet(i, "web"))
    sim.call_at(0.0, ap.wired_arrival, packet(100, "rt0"))
    sim.run()
    assert ap.stats.dropped[AC_BEST_EFFORT] >= 1
    assert ap.stats.dropped[AC_VOICE] == 0
    assert ap.stats.transmitted[AC_VOICE] == 1


def test_wmm_cannot_fix_wireless_loss():
    """Section 2's claim: prioritization does nothing for air loss."""
    from tests.test_wifi_ap import DeadLink
    sim = Simulator()
    ap = WmmAccessPoint(sim, DeadLink())
    got = []
    ap.set_receiver(lambda p, t, n: got.append(p))
    sim.call_at(0.0, ap.wired_arrival, packet(0, "rt0"))
    sim.run()
    assert ap.stats.transmitted[AC_VOICE] == 1
    assert got == []          # priority granted, packet lost anyway


# ------------------------------------------------------------------ beacon

def make_psm_setup(interval=DEFAULT_BEACON_INTERVAL_S):
    sim = Simulator()
    ap = AccessPoint(sim, "ap", PerfectLink(), APConfig(
        drop_policy="head", max_queue_len=50))
    scheduler = BeaconScheduler(sim, ap, interval_s=interval)
    return sim, ap, scheduler


def test_beacons_emitted_at_interval():
    sim, ap, scheduler = make_psm_setup(interval=0.1)
    seen = []
    scheduler.subscribe(lambda b: seen.append(b.timestamp))
    scheduler.start()
    sim.run(until=1.05)
    assert len(seen) == 11
    assert seen[1] - seen[0] == pytest.approx(0.1)


def test_tim_reflects_buffer_state():
    sim, ap, scheduler = make_psm_setup(interval=0.1)
    ap.client_sleep()
    tims = []
    scheduler.subscribe(lambda b: tims.append(b.tim_set))
    scheduler.start()
    sim.call_at(0.15, ap.wired_arrival, packet(0))
    sim.run(until=0.35)
    assert tims[0] is False and tims[1] is False   # t=0, t=0.1
    assert tims[2] is True                         # t=0.2: buffered


def test_double_start_rejected():
    sim, ap, scheduler = make_psm_setup()
    scheduler.start()
    with pytest.raises(RuntimeError):
        scheduler.start()


def test_standard_psm_client_retrieves_at_beacon_granularity():
    sim, ap, scheduler = make_psm_setup(interval=0.1024)
    got = []
    ap.set_receiver(lambda p, t, n: got.append((p.seq, t)))
    client = StandardPsmClient(sim, ap, scheduler)
    scheduler.start()
    # A packet buffered just after a beacon waits for the next one.
    sim.call_at(0.11, ap.wired_arrival, packet(7))
    sim.run(until=0.5)
    assert len(got) == 1
    seq, arrival = got[0]
    assert seq == 7
    # Arrives only at/after the t=0.2048 beacon: > 90 ms late.
    assert arrival >= 0.2048
    assert client.polls == 1


def test_standard_psm_mean_latency_half_interval():
    """Retrieval latency ~ Uniform(0, interval): mean near interval/2 —
    which already blows a 100 ms one-way budget half of the time."""
    latencies = []
    for k in range(20):
        sim, ap, scheduler = make_psm_setup(interval=0.1024)
        got = []
        ap.set_receiver(lambda p, t, n: got.append(t))
        StandardPsmClient(sim, ap, scheduler)
        scheduler.start()
        arrival_time = 0.005 + k * 0.0049     # sweep the beacon phase
        sim.call_at(arrival_time, ap.wired_arrival, packet(0))
        sim.run(until=1.0)
        assert got
        latencies.append(got[0] - arrival_time)
    mean = np.mean(latencies)
    assert 0.03 < mean < 0.08
    assert max(latencies) > 0.09
