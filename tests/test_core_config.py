"""Tests for configuration: Algorithm 1 constants and stream profiles."""

import pytest

from repro.core.config import (
    APConfig,
    ClientConfig,
    G711_PROFILE,
    HIGH_RATE_PROFILE,
    MiddleboxConfig,
    StreamProfile,
)


def test_g711_profile_matches_paper():
    assert G711_PROFILE.packet_size_bytes == 160
    assert G711_PROFILE.inter_packet_spacing_s == pytest.approx(0.020)
    assert G711_PROFILE.n_packets == 6000          # 2-minute call
    assert G711_PROFILE.bitrate_bps == pytest.approx(64000.0)


def test_highrate_profile_matches_paper():
    assert HIGH_RATE_PROFILE.packet_size_bytes == 1000
    assert HIGH_RATE_PROFILE.inter_packet_spacing_s == pytest.approx(0.0016)
    assert HIGH_RATE_PROFILE.bitrate_bps == pytest.approx(5e6)


def test_algorithm1_constants():
    cfg = ClientConfig()
    assert cfg.packet_loss_timeout_s == pytest.approx(0.040)   # PLT = 2*IPS
    assert cfg.ap_queue_len == 5                               # MTD/IPS
    # ETTRH = IPS * APQL - LSL = 100 - 2.8 = 97.2 ms
    assert cfg.expected_time_to_reach_head_s == pytest.approx(0.0972)
    assert cfg.secondary_residency_time_s == pytest.approx(0.040)
    assert cfg.association_keepalive_timeout_s == pytest.approx(30.0)


def test_client_config_for_profile_rescales():
    cfg = ClientConfig().for_profile(HIGH_RATE_PROFILE)
    assert cfg.inter_packet_spacing_s == pytest.approx(0.0016)
    assert cfg.ap_queue_len == int(round(0.100 / 0.0016))
    assert cfg.packet_loss_timeout_s == pytest.approx(0.0032)


def test_custom_profile_packet_count():
    p = StreamProfile(duration_s=10.0, inter_packet_spacing_s=0.010)
    assert p.n_packets == 1000


def test_ap_config_defaults():
    ap = APConfig()
    assert ap.drop_policy == "head"
    assert ap.max_queue_len == 5


def test_middlebox_load_constants():
    mb = MiddleboxConfig()
    # Section 6.4: ~+1.1 ms at 1000 streams
    assert mb.per_stream_delay_s * 1000 == pytest.approx(0.0011)
