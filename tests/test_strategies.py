"""Tests for the Section 4 strategy zoo over synthetic paired runs."""

import math

import numpy as np
import pytest

from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace
from repro.core.replication import PairedRun, cross_link_trace
from repro.core.strategies import (
    STRATEGIES,
    baseline,
    better,
    cross_link,
    divert,
    stronger,
    temporal,
)


def make_trace(name, losses, spacing=0.02, delay=0.005):
    delivered = [not bool(x) for x in losses]
    delays = [delay if d else math.nan for d in delivered]
    return LinkTrace(name, np.arange(len(losses)) * spacing,
                     delivered, delays)


def make_run(losses_a, losses_b, rssi_a=-50.0, rssi_b=-60.0,
             offsets=None, spacing=0.02):
    n = len(losses_a)
    profile = StreamProfile(duration_s=n * spacing,
                            inter_packet_spacing_s=spacing)
    return PairedRun(
        profile=profile,
        trace_a=make_trace("A", losses_a, spacing),
        trace_b=make_trace("B", losses_b, spacing),
        offset_traces={k: make_trace(f"A+{k}", v, spacing)
                       for k, v in (offsets or {}).items()},
        rssi_a_dbm=rssi_a, rssi_b_dbm=rssi_b)


def test_stronger_picks_higher_rssi():
    run = make_run([1, 1], [0, 0], rssi_a=-40.0, rssi_b=-70.0)
    assert stronger(run) is run.trace_a
    run2 = make_run([1, 1], [0, 0], rssi_a=-80.0, rssi_b=-70.0)
    assert stronger(run2) is run2.trace_b


def test_baseline_is_stronger():
    run = make_run([0], [1], rssi_a=-40.0)
    assert baseline(run) is stronger(run)


def test_better_settles_on_trial_winner():
    # Link A clean in trial (first 5 s = 250 pkts) then dies;
    # link B lossy in trial then clean: better picks A, suffers later.
    n = 500
    losses_a = [0] * 250 + [1] * 250
    losses_b = [1] * 250 + [0] * 250
    run = make_run(losses_a, losses_b)
    trace = better(run)
    # after the trial, it is stuck with A's failures
    assert np.all(~trace.delivered[250:])


def test_better_trial_period_gets_merged_coverage():
    losses_a = [1] * 250 + [0] * 250
    losses_b = [0] * 500
    run = make_run(losses_a, losses_b)
    trace = better(run)
    # during the trial both NICs receive: B covers A's losses
    assert np.all(trace.delivered[:250])


def test_divert_switches_after_loss():
    # A loses packet 0; divert switches to B for packet 1 onwards.
    losses_a = [1, 1, 1, 1]
    losses_b = [0, 0, 0, 0]
    run = make_run(losses_a, losses_b)
    trace = divert(run, window_h=1, threshold_t=1)
    assert not trace.delivered[0]      # the triggering loss is NOT recovered
    assert np.all(trace.delivered[1:])


def test_divert_ping_pongs_between_bad_links():
    losses_a = [1] * 6
    losses_b = [1] * 6
    run = make_run(losses_a, losses_b)
    trace = divert(run)
    assert np.all(~trace.delivered)


def test_divert_validates_window():
    run = make_run([0], [0])
    with pytest.raises(ValueError):
        divert(run, window_h=1, threshold_t=2)
    with pytest.raises(ValueError):
        divert(run, window_h=0)


def test_divert_window_threshold():
    # T=2,H=3: a single isolated loss does not trigger a switch.
    losses_a = [1, 0, 0, 1, 0, 0]
    losses_b = [0] * 6
    run = make_run(losses_a, losses_b)
    trace = divert(run, window_h=3, threshold_t=2)
    assert trace.delivered.tolist() == [False, True, True, False, True, True]


def test_cross_link_unions_deliveries():
    losses_a = [1, 0, 1, 0]
    losses_b = [0, 1, 1, 0]
    run = make_run(losses_a, losses_b)
    trace = cross_link(run)
    assert trace.delivered.tolist() == [True, True, False, True]


def test_cross_link_dominates_either_link():
    rng = np.random.default_rng(0)
    losses_a = (rng.random(500) < 0.2).astype(int)
    losses_b = (rng.random(500) < 0.2).astype(int)
    run = make_run(losses_a, losses_b)
    x = cross_link(run)
    assert x.loss_rate <= run.trace_a.loss_rate
    assert x.loss_rate <= run.trace_b.loss_rate


def test_temporal_uses_offset_copy():
    losses_a = [1, 1, 0]
    offset = {0.1: [0, 1, 0]}
    run = make_run(losses_a, [1, 1, 1], offsets=offset)
    trace = temporal(run, 0.1)
    assert trace.delivered.tolist() == [True, False, True]


def test_temporal_missing_delta_raises():
    run = make_run([0], [0])
    with pytest.raises(KeyError):
        temporal(run, 0.05)


def test_temporal_offset_delay_accounted():
    losses_a = [1]
    offsets = {0.1: [0]}
    run = make_run(losses_a, [1], offsets=offsets)
    run.offset_traces[0.1] = LinkTrace(
        "A+100ms", np.array([0.0]), np.array([True]), np.array([0.105]))
    trace = temporal(run, 0.1)
    assert trace.delays[0] == pytest.approx(0.105)


def test_registry_contains_all_names():
    assert set(STRATEGIES) == {
        "stronger", "better", "divert", "cross-link", "baseline"}


def test_cross_link_trace_helper_equivalent():
    run = make_run([1, 0], [0, 1])
    assert np.array_equal(cross_link_trace(run).delivered,
                          cross_link(run).delivered)
