"""Tests for N-link diversity, Gilbert fitting, dataset IO, and RTCP."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import fit_gilbert, fitted_loss_rate
from repro.channel.gilbert import GilbertParams, sample_loss_array
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import StreamProfile
from repro.core.multilink import (
    best_of,
    diversity_gain_curve,
    make_before_break,
    render_multilink_run,
)
from repro.core.packet import LinkTrace
from repro.io import (
    load_paired_runs,
    load_result_json,
    load_traces,
    save_paired_runs,
    save_result_json,
    save_traces,
)
from repro.scenarios import generate_wild_runs
from repro.sim import RandomRouter, Simulator
from repro.traffic.rtcp import RtcpReceiver

SHORT = StreamProfile(duration_s=10.0)


def make_links(n, seed=0, bad=True):
    client = StaticPosition(Position(0, 0))
    router = RandomRouter(seed)
    links = []
    for i in range(n):
        gilbert = GilbertParams(mean_good_s=2.0, mean_bad_s=0.4,
                                loss_good=0.0, loss_bad=0.98) if bad \
            else GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                               loss_good=0.0, loss_bad=0.0)
        links.append(WifiLink(
            LinkConfig(name=f"L{i}", ap_position=Position(5.0 + 2 * i, 0),
                       gilbert=gilbert, base_delay_s=0.0),
            router, mobility=client))
    return links


# --------------------------------------------------------------- multilink

def test_render_multilink_shapes():
    run = render_multilink_run(make_links(3), SHORT)
    assert run.n_links == 3
    assert all(len(t) == SHORT.n_packets for t in run.traces)
    assert len(run.rssi_dbm) == 3


def test_render_multilink_empty_rejected():
    with pytest.raises(ValueError):
        render_multilink_run([], SHORT)


def test_best_of_k_bounds():
    run = render_multilink_run(make_links(2), SHORT)
    with pytest.raises(ValueError):
        best_of(run, 0)
    with pytest.raises(ValueError):
        best_of(run, 3)


def test_best_of_one_is_strongest_link():
    run = render_multilink_run(make_links(3), SHORT)
    strongest = int(np.argmax(run.rssi_dbm))
    assert best_of(run, 1).name == run.traces[strongest].name


def test_diversity_gain_monotone():
    """More links can only help (loss is a union over links)."""
    runs = [render_multilink_run(make_links(4, seed=s), SHORT)
            for s in range(3)]
    curve = diversity_gain_curve(runs, metric=lambda t: t.loss_rate)
    values = [curve[k] for k in sorted(curve)]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
    assert curve[4] < curve[1]     # diversity pays on bad links


def test_diversity_diminishing_returns():
    runs = [render_multilink_run(make_links(4, seed=s + 10), SHORT)
            for s in range(4)]
    curve = diversity_gain_curve(runs, metric=lambda t: t.loss_rate)
    first_gain = curve[1] - curve[2]
    later_gain = curve[3] - curve[4]
    assert first_gain >= later_gain - 1e-9


def test_make_before_break_no_gap():
    run = render_multilink_run(make_links(2, bad=False), SHORT)
    trace = make_before_break(run)
    assert trace.loss_rate == 0.0


def test_make_before_break_between_selection_and_diversity():
    runs = [render_multilink_run(make_links(2, seed=s + 20), SHORT)
            for s in range(4)]
    mbb = np.mean([make_before_break(r).loss_rate for r in runs])
    stay = np.mean([best_of(r, 1).loss_rate for r in runs])
    merge = np.mean([best_of(r, 2).loss_rate for r in runs])
    assert merge <= mbb + 1e-9       # replication dominates handoff
    assert mbb <= stay + 0.02        # handoff at least ~matches staying


# ----------------------------------------------------------------- fitting

def test_fit_recovers_generating_parameters():
    params = GilbertParams(mean_good_s=2.0, mean_bad_s=0.3,
                           loss_good=0.0, loss_bad=1.0)
    rng = RandomRouter(1).stream("fit")
    losses = sample_loss_array(params, 200_000, 0.02, rng)
    fit = fit_gilbert(losses, spacing_s=0.02)
    assert fit.params.mean_bad_s == pytest.approx(0.3, rel=0.25)
    assert fit.params.mean_good_s == pytest.approx(2.0, rel=0.25)
    assert fit.loss_rate == pytest.approx(
        params.stationary_bad_fraction, rel=0.2)


def test_fit_stationary_rate_consistent():
    params = GilbertParams(mean_good_s=1.0, mean_bad_s=0.2,
                           loss_good=0.0, loss_bad=1.0)
    rng = RandomRouter(2).stream("fit")
    losses = sample_loss_array(params, 100_000, 0.02, rng)
    fit = fit_gilbert(losses, spacing_s=0.02)
    assert fitted_loss_rate(fit) == pytest.approx(fit.loss_rate, rel=0.2)


def test_fit_clean_trace():
    fit = fit_gilbert(np.zeros(1000))
    assert fit.loss_rate == 0.0
    assert fit.n_bursts == 0


def test_fit_empty_raises():
    with pytest.raises(ValueError):
        fit_gilbert(np.array([]))


def test_fit_burst_length_estimate():
    losses = np.array(([0] * 20 + [1] * 4) * 50, dtype=float)
    fit = fit_gilbert(losses)
    assert fit.mean_burst_packets == pytest.approx(4.0)
    assert fit.n_bursts == 50


# ---------------------------------------------------------------------- IO

def trace_of(losses, name="t"):
    delivered = [not bool(x) for x in losses]
    delays = [0.005 if d else math.nan for d in delivered]
    return LinkTrace(name, np.arange(len(losses)) * 0.02,
                     delivered, delays)


def test_traces_roundtrip(tmp_path):
    traces = [trace_of([0, 1, 0], "a"), trace_of([1, 1, 0], "b")]
    path = tmp_path / "traces.npz"
    save_traces(path, traces)
    loaded = load_traces(path)
    assert [t.name for t in loaded] == ["a", "b"]
    for orig, back in zip(traces, loaded):
        assert np.array_equal(orig.delivered, back.delivered)
        assert np.allclose(orig.send_times, back.send_times)


def test_paired_runs_roundtrip(tmp_path):
    runs = generate_wild_runs(2, SHORT, seed=6, temporal_deltas=(0.1,))
    path = tmp_path / "runs.npz"
    save_paired_runs(path, runs)
    loaded = load_paired_runs(path)
    assert len(loaded) == 2
    for orig, back in zip(runs, loaded):
        assert orig.scenario == back.scenario
        assert np.array_equal(orig.trace_a.delivered,
                              back.trace_a.delivered)
        assert set(back.offset_traces) == {0.1}
        assert orig.rssi_a_dbm == pytest.approx(back.rssi_a_dbm)


def test_result_json_roundtrip(tmp_path):
    from repro.experiments.section3 import run_figure1
    result = run_figure1(seed=0)
    path = tmp_path / "fig1.json"
    save_result_json(path, result)
    loaded = load_result_json(path)
    assert loaded["residential_multi_fraction"] == pytest.approx(
        result.residential_multi_fraction)


# -------------------------------------------------------------------- RTCP

def test_rtcp_counts_losses():
    sim = Simulator()
    rx = RtcpReceiver(sim)
    rx.start()
    # 100 packets at 20 ms; every 5th lost.
    for seq in range(100):
        if seq % 5 == 0:
            continue
        t = seq * 0.02
        sim.call_at(t + 0.01, rx.on_packet, seq, t, t + 0.01)
    sim.run(until=6.0)
    assert rx.reports
    report = rx.reports[0]
    assert report.fraction_lost == pytest.approx(0.2, abs=0.03)
    assert report.cumulative_lost == pytest.approx(20, abs=3)


def test_rtcp_jitter_estimator():
    sim = Simulator()
    rx = RtcpReceiver(sim)
    rng = RandomRouter(3).stream("jit")
    for seq in range(500):
        t = seq * 0.02
        arrival = t + 0.01 + float(rng.uniform(0, 0.008))
        sim.call_at(arrival, rx.on_packet, seq, t, arrival)
    sim.run()
    # Uniform(0,8ms) transit variation -> mean |D| ~ 2.7 ms.
    assert 0.0005 < rx.interarrival_jitter_s < 0.008


def test_rtcp_constant_delay_zero_jitter():
    sim = Simulator()
    rx = RtcpReceiver(sim)
    for seq in range(50):
        t = seq * 0.02
        sim.call_at(t + 0.01, rx.on_packet, seq, t, t + 0.01)
    sim.run()
    assert rx.interarrival_jitter_s == pytest.approx(0.0, abs=1e-9)


def test_rtcp_interval_randomized():
    sim = Simulator()
    rng = RandomRouter(4).stream("rtcp")
    rx = RtcpReceiver(sim, rng=rng)
    rx.start()
    sim.run(until=30.0)
    gaps = np.diff([r.timestamp for r in rx.reports])
    assert len(gaps) >= 3
    assert gaps.min() >= 2.5 - 1e-9
    assert gaps.max() <= 7.5 + 1e-9
    assert gaps.std() > 0.0


def test_rtcp_double_start_rejected():
    sim = Simulator()
    rx = RtcpReceiver(sim)
    rx.start()
    with pytest.raises(RuntimeError):
        rx.start()
